"""In-process churn replay against the daemon's state machine.

The fuzzer's ``kind="churn"`` scenarios and the CI smoke replay a seeded
arrival/departure sequence against a :class:`~repro.service.state.ServiceState`
— the exact object the asyncio daemon serves — and cross-check the live
incremental allocation against a scratch water-fill as they go.  Results
are deterministic JSON (no wall-clock anywhere), so churn tasks cache and
replay byte-identically like every other ``repro.experiments`` kind.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from ..topology.base import Topology
from ..validation.churn import CHURN_TOLERANCE, churn_ops, compare_against_scratch
from .state import ServiceState


def allocation_digest(state: ServiceState) -> str:
    """Stable hex digest of the live per-flow rates (exact floats)."""
    rates = {
        str(fid): state.incremental.rate(fid)
        for fid in sorted(spec.flow_id for spec in state.incremental.flows())
    }
    blob = json.dumps(rates, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def run_churn(
    topology: Topology,
    seed: int,
    n_ops: int,
    max_flows: int = 24,
    check_every: int = 1,
    fallback_at: Optional[int] = None,
    fail_links: int = 1,
    fail_seed: Optional[int] = None,
    headroom: float = 0.0,
    tolerance: float = CHURN_TOLERANCE,
    snapshot_path: Optional[str] = None,
    state: Optional[ServiceState] = None,
) -> dict:
    """Replay a seeded churn sequence through a :class:`ServiceState`.

    Announces/finishes/demand-updates flow through the same entry points
    the daemon dispatches to; every ``check_every``-th operation compares
    the incremental allocation against a scratch fill.  With *fallback_at*
    set, that op index first fails ``fail_links`` symmetric links
    (:class:`~repro.validation.faults.FaultInjector`) and rebuilds the
    allocator on the degraded fabric — a forced full recompute.

    Returns a deterministic JSON-able result dict whose ``churn`` section
    feeds :func:`repro.validation.verdicts.churn_verdict`.
    """
    from ..validation.faults import FaultInjector

    if state is None:
        state = ServiceState(topology, headroom=headroom, snapshot_path=snapshot_path)
    ops = churn_ops(
        seed,
        topology.n_nodes,
        n_ops,
        max_flows=max_flows,
        capacity_bps=topology.capacity_bps,
    )
    specs = {}
    max_err = 0.0
    peak_flows = 0
    checks = 0
    for index, op in enumerate(ops):
        if fallback_at is not None and index == fallback_at:
            injector = FaultInjector(seed=fail_seed if fail_seed is not None else seed)
            degraded, _failed = injector.fail_links(
                state.incremental.topology,
                fail_links,
                require_connected=True,
                symmetric=True,
            )
            state.incremental.rebuild(topology=degraded)
        kind = op["op"]
        if kind == "add":
            specs[op["spec"].flow_id] = op["spec"]
            state.announce(op["spec"])
        elif kind == "remove":
            specs.pop(op["flow_id"], None)
            state.finish(op["flow_id"])
        else:  # demand update rides the re-announce path, like the daemon
            spec = specs[op["flow_id"]].with_demand(op["demand_bps"])
            specs[op["flow_id"]] = spec
            state.announce(spec)
        peak_flows = max(peak_flows, state.incremental.n_flows)
        if index % check_every == 0 or index == len(ops) - 1:
            checks += 1
            errors = compare_against_scratch(state.incremental)
            step_worst = max(errors.values(), default=0.0)
            max_err = max(max_err, step_worst)
    stats = state.incremental.stats()
    return {
        "kind": "churn",
        "completion_rate": 1.0,
        "summary": {
            "flows": peak_flows,
            "completed": stats["n_flows"],
            "epochs_recomputed": stats["fallback_recomputes"],
        },
        "churn": {
            "ops": n_ops,
            "checks": checks,
            "max_rel_error": max_err,
            "tolerance": tolerance,
            "peak_flows": peak_flows,
            "final_flows": stats["n_flows"],
            "incremental_ops": stats["incremental_ops"],
            "fallback_recomputes": stats["fallback_recomputes"],
            "fallback_reasons": stats["fallback_reasons"],
            "fallback_at": fallback_at,
            "allocation_digest": allocation_digest(state),
        },
    }


__all__ = ["allocation_digest", "run_churn"]
