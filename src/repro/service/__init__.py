"""Long-lived control-plane service: incremental allocation, served.

R2C2's rack controller recomputes rates on every flow event (paper §4);
this package turns the reproduction's batch allocator into a servable
system:

* :class:`~repro.service.state.ServiceState` — the daemon's transport-free
  core: an :class:`~repro.congestion.IncrementalWaterfill` flow table,
  operation counters, query-latency reservoir, and atomic
  snapshot/restore so a SIGKILLed daemon resumes without reannouncement
  (allocation answers stay byte-identical).
* :class:`~repro.service.daemon.ControlDaemon` — the ``repro serve``
  asyncio listener speaking the length-prefixed control messages of
  :mod:`repro.wire.control` (FLOW_ANNOUNCE / FLOW_FINISH / ALLOC_QUERY /
  SNAPSHOT_SUB) and streaming telemetry snapshots to subscribers.
* :class:`~repro.service.client.ServiceClient` — the blocking socket
  client used by tests, the CI smoke and tooling.
* :func:`~repro.service.churn.run_churn` — seeded in-process churn replay
  with a scratch-vs-incremental cross-check, the execution path behind
  the fuzzer's ``kind="churn"`` scenarios.
"""

from .churn import allocation_digest, run_churn
from .client import ServiceClient, read_port_file
from .daemon import ControlDaemon, serve_forever
from .state import SNAPSHOT_SCHEMA, ServiceState, spec_from_announce

__all__ = [
    "ControlDaemon",
    "SNAPSHOT_SCHEMA",
    "ServiceClient",
    "ServiceState",
    "allocation_digest",
    "read_port_file",
    "run_churn",
    "serve_forever",
    "spec_from_announce",
]
