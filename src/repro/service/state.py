"""The daemon's allocation state machine (transport-agnostic).

:class:`ServiceState` is everything the ``repro serve`` daemon knows,
minus the sockets: the live :class:`~repro.congestion.IncrementalWaterfill`
flow table, operation counters, the query-latency reservoir, and the
snapshot/restore plumbing.  Keeping it transport-free lets the churn
oracle, the fuzzer's churn executor and the in-process daemon tests drive
the exact code path the asyncio daemon serves, without event loops.

Durability: when constructed with a ``snapshot_path``, every mutation
persists the full flow table and the *exact* float rates/loads via
:func:`~repro.core.ioutil.atomic_write_json` (write → fsync → rename).
JSON round-trips Python floats losslessly, so a daemon that is SIGKILLed
and restarted from its snapshot answers allocation queries byte-for-byte
identically to one that never died.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional

from ..congestion import FlowSpec, IncrementalWaterfill
from ..errors import ServiceError
from ..routing import protocol_class
from ..sim.metrics import LatencyReservoir
from ..topology.base import Topology
from ..wire.control import AllocReply, FlowAnnounce

#: Snapshot file layout version.
SNAPSHOT_SCHEMA = 1


def spec_from_announce(msg: FlowAnnounce) -> FlowSpec:
    """Translate a wire FLOW_ANNOUNCE into a :class:`FlowSpec`.

    The wire protocol id becomes the registered protocol name; weight and
    demand arrive already quantized by the codec, so live and
    restored-from-snapshot daemons allocate from identical specs.
    """
    return FlowSpec(
        flow_id=msg.flow_id,
        src=msg.src,
        dst=msg.dst,
        protocol=protocol_class(msg.protocol_id).name,
        weight=msg.weight,
        priority=msg.priority,
        demand_bps=msg.demand_bps,
    )


class ServiceState:
    """Flow table + incremental allocator + counters + snapshot plumbing.

    Attributes:
        seq: Mutation sequence number (monotonic; restored from snapshot).
        announces / finishes / queries: Operation counters.
        query_latency: Wall-clock reservoir over :meth:`query` service
            times (telemetry only — never part of allocation answers).
    """

    def __init__(
        self,
        topology: Topology,
        headroom: float = 0.0,
        snapshot_path: Optional[str] = None,
        telemetry=None,
        provider=None,
        capacities=None,
    ) -> None:
        self.incremental = IncrementalWaterfill(
            topology, provider=provider, headroom=headroom, capacities=capacities
        )
        self._headroom = float(headroom)
        self._snapshot_path = Path(snapshot_path) if snapshot_path else None
        self.seq = 0
        self.announces = 0
        self.finishes = 0
        self.queries = 0
        self.restored = False
        self.query_latency = LatencyReservoir(seed=0)
        # Telemetry instruments resolved once; ``or None`` keeps the hot
        # path a cheap falsy test when telemetry is disabled.
        if telemetry is not None:
            self._ctr_announces = telemetry.metrics.counter("service.announces") or None
            self._ctr_finishes = telemetry.metrics.counter("service.finishes") or None
            self._ctr_queries = telemetry.metrics.counter("service.queries") or None
            self._ctr_fallbacks = telemetry.metrics.counter("service.fallback_recomputes") or None
            self._ctr_incremental = telemetry.metrics.counter("service.incremental_ops") or None
            self._gauge_flows = telemetry.metrics.gauge("service.flows") or None
        else:
            self._ctr_announces = self._ctr_finishes = self._ctr_queries = None
            self._ctr_fallbacks = self._ctr_incremental = None
            self._gauge_flows = None
        if self._snapshot_path is not None and self._snapshot_path.exists():
            self.restore(self._snapshot_path)

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def announce(self, spec: FlowSpec) -> bool:
        """Announce (or re-announce) one flow; returns ``True`` if new."""
        was_new = not self.incremental.has_flow(spec.flow_id)
        before = self.incremental.fallback_recomputes
        self.incremental.add_flow(spec)
        self.announces += 1
        if self._ctr_announces:
            self._ctr_announces.inc()
        self._after_mutation(before)
        return was_new

    def finish(self, flow_id: int) -> bool:
        """Retire one flow; returns ``False`` when it was not announced."""
        before = self.incremental.fallback_recomputes
        known = self.incremental.remove_flow(flow_id)
        self.finishes += 1
        if self._ctr_finishes:
            self._ctr_finishes.inc()
        if known:
            self._after_mutation(before)
        return known

    def query(self, flow_id: int) -> AllocReply:
        """Answer one allocation query from live incremental state."""
        started = time.perf_counter_ns()
        self.queries += 1
        if self._ctr_queries:
            self._ctr_queries.inc()
        if self.incremental.has_flow(flow_id):
            reply = AllocReply(
                flow_id=flow_id,
                known=True,
                rate_bps=self.incremental.rate(flow_id),
                bottleneck_link=self.incremental.bottleneck(flow_id),
            )
        else:
            reply = AllocReply(flow_id=flow_id, known=False)
        self.query_latency.record(time.perf_counter_ns() - started)
        return reply

    def _after_mutation(self, fallbacks_before: int) -> None:
        self.seq += 1
        if self._gauge_flows:
            self._gauge_flows.set(self.incremental.n_flows)
        if self.incremental.fallback_recomputes > fallbacks_before:
            if self._ctr_fallbacks:
                self._ctr_fallbacks.inc()
        elif self._ctr_incremental:
            self._ctr_incremental.inc()
        if self._snapshot_path is not None:
            self.save_snapshot(self._snapshot_path)

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #

    def telemetry_snapshot(self) -> dict:
        """The SNAPSHOT_EVENT payload: counters, ratios, latency summary."""
        stats = self.incremental.stats()
        alloc = self.incremental.allocation()
        return {
            "seq": self.seq,
            "flows": stats["n_flows"],
            "announces": self.announces,
            "finishes": self.finishes,
            "queries": self.queries,
            "incremental_ops": stats["incremental_ops"],
            "fallback_recomputes": stats["fallback_recomputes"],
            "incremental_ratio": stats["incremental_ratio"],
            "fallback_reasons": stats["fallback_reasons"],
            "aggregate_throughput_bps": alloc.aggregate_throughput_bps(),
            "max_link_utilization": alloc.max_link_utilization(),
            "query_latency": self.query_latency.to_dict(),
        }

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #

    def save_snapshot(self, path) -> None:
        """Atomically persist the full state to *path*."""
        from ..core.ioutil import atomic_write_json

        topology = self.incremental.topology
        atomic_write_json(
            Path(path),
            {
                "schema": SNAPSHOT_SCHEMA,
                "seq": self.seq,
                "headroom": self._headroom,
                "topology": {
                    "kind": type(topology).__name__,
                    "n_nodes": topology.n_nodes,
                    "n_links": topology.n_links,
                },
                "counters": {
                    "announces": self.announces,
                    "finishes": self.finishes,
                    "queries": self.queries,
                },
                "alloc": self.incremental.state_dict(),
            },
        )

    def restore(self, path) -> None:
        """Load a :meth:`save_snapshot` file; rates restore bit-exactly."""
        import json

        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServiceError(f"cannot read snapshot {path}: {exc}") from exc
        if data.get("schema") != SNAPSHOT_SCHEMA:
            raise ServiceError(
                f"snapshot schema {data.get('schema')!r} != {SNAPSHOT_SCHEMA}"
            )
        topology = self.incremental.topology
        topo = data.get("topology", {})
        if (topo.get("n_nodes"), topo.get("n_links")) != (
            topology.n_nodes,
            topology.n_links,
        ):
            raise ServiceError(
                f"snapshot topology {topo} does not match the serving fabric "
                f"({topology.n_nodes} nodes / {topology.n_links} links)"
            )
        self.incremental.load_state(data["alloc"])
        self.seq = int(data.get("seq", 0))
        counters = data.get("counters", {})
        self.announces = int(counters.get("announces", 0))
        self.finishes = int(counters.get("finishes", 0))
        self.queries = int(counters.get("queries", 0))
        self.restored = True
        if self._gauge_flows:
            self._gauge_flows.set(self.incremental.n_flows)


__all__ = ["SNAPSHOT_SCHEMA", "ServiceState", "spec_from_announce"]
