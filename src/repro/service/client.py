"""Blocking socket client for the ``repro serve`` control protocol.

:class:`ServiceClient` is the test/tooling workhorse: a plain ``socket``
speaking the same length-prefixed frames as the asyncio daemon, one
request/reply at a time.  The raw-bytes variants (:meth:`query_raw`)
return the undecoded reply body so the kill/restore test can assert
byte-for-byte identity of allocation answers.
"""

from __future__ import annotations

import math
import socket
import struct
from typing import List, Optional

from ..congestion import FlowSpec
from ..errors import ServiceError, WireFormatError
from ..routing import protocol_class
from ..wire import control as ctl


class ServiceClient:
    """One blocking connection to a control daemon."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServiceError(f"cannot connect to {host}:{port}: {exc}") from exc

    def close(self) -> None:
        """Close the connection."""
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Framing
    # ------------------------------------------------------------------ #

    def send(self, message) -> None:
        """Send one control message."""
        self._sock.sendall(ctl.encode_frame(message.encode()))

    def send_raw(self, body: bytes) -> None:
        """Frame and send raw body bytes (corruption/fault-injection tests)."""
        self._sock.sendall(ctl.encode_frame(body))

    def recv_body(self) -> bytes:
        """Receive one frame body (blocking)."""
        prefix = self._recv_exact(4)
        (length,) = struct.unpack(">I", prefix)
        if length > ctl.MAX_FRAME_SIZE:
            raise WireFormatError(f"frame length {length} exceeds MAX_FRAME_SIZE")
        return self._recv_exact(length)

    def recv(self):
        """Receive and decode one control message."""
        return ctl.decode_control(self.recv_body())

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ServiceError("daemon closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # ------------------------------------------------------------------ #
    # RPCs
    # ------------------------------------------------------------------ #

    def announce(
        self,
        flow_id: int,
        src: int,
        dst: int,
        protocol: str = "rps",
        weight: float = 1.0,
        priority: int = 0,
        demand_bps: float = math.inf,
    ) -> ctl.ControlAck:
        """FLOW_ANNOUNCE one flow and wait for the ack."""
        self.send(
            ctl.FlowAnnounce(
                flow_id=flow_id,
                src=src,
                dst=dst,
                protocol_id=protocol_class(protocol).protocol_id,
                weight=weight,
                priority=priority,
                demand_bps=demand_bps,
            )
        )
        return self._expect(ctl.ControlAck)

    def announce_spec(self, spec: FlowSpec) -> ctl.ControlAck:
        """FLOW_ANNOUNCE from a :class:`FlowSpec`."""
        return self.announce(
            flow_id=spec.flow_id,
            src=spec.src,
            dst=spec.dst,
            protocol=spec.protocol,
            weight=spec.weight,
            priority=spec.priority,
            demand_bps=spec.demand_bps,
        )

    def finish(self, flow_id: int) -> ctl.ControlAck:
        """FLOW_FINISH one flow and wait for the ack."""
        self.send(ctl.FlowFinish(flow_id))
        return self._expect(ctl.ControlAck)

    def query(self, flow_id: int) -> ctl.AllocReply:
        """ALLOC_QUERY one flow."""
        self.send(ctl.AllocQuery(flow_id))
        return self._expect(ctl.AllocReply)

    def query_raw(self, flow_id: int) -> bytes:
        """ALLOC_QUERY, returning the raw (undecoded) reply body."""
        self.send(ctl.AllocQuery(flow_id))
        body = self.recv_body()
        if ctl.control_type(body) != ctl.TYPE_ALLOC_REPLY:
            raise ServiceError(
                f"expected ALLOC_REPLY, got {ctl.decode_control(body)!r}"
            )
        return body

    def subscribe(self, max_events: int = 0) -> ctl.SnapshotEvent:
        """SNAPSHOT_SUB; returns the immediately-sent current snapshot.

        Further events arrive on this connection as the daemon mutates;
        read them with :meth:`next_snapshot`.
        """
        self.send(ctl.SnapshotSubscribe(max_events=max_events))
        return self._expect(ctl.SnapshotEvent)

    def next_snapshot(self) -> ctl.SnapshotEvent:
        """Block until the next SNAPSHOT_EVENT arrives."""
        return self._expect(ctl.SnapshotEvent)

    def query_many_raw(self, flow_ids) -> List[bytes]:
        """Raw ALLOC_REPLY bodies for many flows (one RPC each)."""
        return [self.query_raw(fid) for fid in flow_ids]

    def _expect(self, kind):
        message = self.recv()
        if isinstance(message, ctl.ControlError):
            raise ServiceError(
                f"daemon error {message.code}: {message.message}"
            )
        if not isinstance(message, kind):
            raise ServiceError(f"expected {kind.__name__}, got {message!r}")
        return message


def read_port_file(path, timeout: float = 10.0, poll: float = 0.02) -> int:
    """Wait for a daemon's ``--port-file`` to appear and return the port."""
    import time
    from pathlib import Path

    deadline = time.monotonic() + timeout
    port_path = Path(path)
    while time.monotonic() < deadline:
        if port_path.exists():
            text = port_path.read_text().strip()
            if text:
                return int(text)
        time.sleep(poll)
    raise ServiceError(f"port file {path} did not appear within {timeout}s")


__all__ = ["ServiceClient", "read_port_file"]
