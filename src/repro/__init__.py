"""R2C2: a network stack for rack-scale computers — full reproduction.

Reproduces Costa, Ballani, Razavi and Kash, *R2C2: A Network Stack for
Rack-scale Computers*, SIGCOMM 2015.  See DESIGN.md for the system inventory
and EXPERIMENTS.md for paper-vs-measured results.

The public API re-exports the main entry points of each subsystem; see the
subpackage docstrings for details:

* :mod:`repro.topology` — direct-connect rack fabrics.
* :mod:`repro.routing` — per-flow routing protocols.
* :mod:`repro.broadcast` — the flow-event broadcast substrate.
* :mod:`repro.congestion` — rate-based congestion control.
* :mod:`repro.selection` — routing-protocol selection heuristics.
* :mod:`repro.wire` — packet formats.
* :mod:`repro.sim` — the packet-level simulator.
* :mod:`repro.maze` — the rack-emulation platform.
* :mod:`repro.workloads` — traffic patterns and flow generators.
* :mod:`repro.analysis` — throughput analysis and statistics.
* :mod:`repro.telemetry` — metrics, event tracing and link probes.
* :mod:`repro.core` — the assembled R2C2 stack.
"""

__version__ = "1.0.0"

from .errors import (
    BroadcastError,
    CampaignInterrupted,
    CongestionControlError,
    EmulationError,
    ExperimentError,
    ReproError,
    RoutingError,
    SelectionError,
    ServiceError,
    SimulationError,
    TopologyError,
    WireFormatError,
)

__all__ = [
    "BroadcastError",
    "CampaignInterrupted",
    "CongestionControlError",
    "EmulationError",
    "ExperimentError",
    "ReproError",
    "RoutingError",
    "SelectionError",
    "ServiceError",
    "SimulationError",
    "TopologyError",
    "WireFormatError",
    "__version__",
]
