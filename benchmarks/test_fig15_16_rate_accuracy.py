"""Figures 15 and 16: accuracy of periodic rate recomputation.

* Fig 15 — median / p95 of the normalized difference between each flow's
  average rate under recomputation interval ρ and under the ideal ρ=0
  (recompute at every flow event), at the default τ.
* Fig 16 — the same error at ρ=500 µs as a function of τ.

Paper anchors (512 nodes): ρ=500 µs-1 ms keeps the median within 8.2 %
(p95 37.9 %) at τ=1 µs; the error is negligible at τ=100 µs and large at
τ=100 ns.  Reproduced claims: error decreases with smaller ρ (Fig 15) and
increases with load (Fig 16).
"""

import pytest

from repro.analysis import format_series, median, percentile
from repro.sim.fluid import average_rate_error
from repro.types import usec
from repro.workloads import ParetoSizes, poisson_trace

from conftest import current_scale, emit

RHO_SWEEP_US = (10, 50, 100, 500, 1000)


def make_trace(topology, tau_ns, n_flows, seed=15):
    return poisson_trace(
        topology,
        n_flows,
        tau_ns,
        sizes=ParetoSizes(cap_bytes=20_000_000),
        seed=seed,
    )


def test_fig15_rate_error_vs_interval(benchmark, eval_topology, eval_provider):
    scale = current_scale()
    trace = make_trace(eval_topology, scale.tau_default_ns, scale.n_flows)

    def sweep():
        rows = {}
        for rho_us in RHO_SWEEP_US:
            errors = average_rate_error(
                eval_topology, trace, usec(rho_us), provider=eval_provider
            )
            rows[rho_us] = (median(errors), percentile(errors, 95))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rhos = sorted(rows)
    emit(
        "fig15_rate_error_vs_rho",
        format_series(
            f"Fig 15: normalized |rate(rho) - rate(0)| / rate(0), tau={scale.tau_default_ns}ns",
            "rho_us",
            rhos,
            {
                "median": [rows[r][0] for r in rhos],
                "p95": [rows[r][1] for r in rhos],
            },
        )
        + "\n\npaper at 512 nodes, tau=1us: rho=500us -> median 8.2%, p95 37.9%",
    )
    medians = [rows[r][0] for r in rhos]
    # Smaller intervals track the ideal more closely.
    assert medians[0] <= medians[-1]
    assert rows[rhos[0]][1] <= rows[rhos[-1]][1] * 1.2


def test_fig16_rate_error_vs_load(benchmark, eval_topology, eval_provider):
    scale = current_scale()

    def sweep():
        rows = {}
        for tau in scale.tau_sweep_ns:
            trace = make_trace(eval_topology, tau, scale.n_flows // 2)
            errors = average_rate_error(
                eval_topology, trace, usec(500), provider=eval_provider
            )
            rows[tau] = (median(errors), percentile(errors, 95))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    taus = sorted(rows)
    emit(
        "fig16_rate_error_vs_load",
        format_series(
            "Fig 16: rate error at rho=500us vs flow inter-arrival tau (ns)",
            "tau_ns",
            taus,
            {
                "median": [rows[t][0] for t in taus],
                "p95": [rows[t][1] for t in taus],
            },
        )
        + "\n\npaper: negligible at tau=100us, significant at tau=100ns",
    )
    # Heavier load (smaller tau) => larger deviation from ideal.
    assert rows[taus[0]][0] >= rows[taus[-1]][0]
