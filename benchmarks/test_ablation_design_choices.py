"""Ablations of R2C2's design choices (beyond the paper's figure set).

Each ablation isolates one knob DESIGN.md calls out:

* **Young-flow rate policy** — what a flow may send before its first epoch:
  the §3.1 sender-computed allocation (``local_waterfill``), the cheap
  ``mean_allocated`` estimate, or a ``line_rate`` blast absorbed by the
  headroom.  The policies trade sender CPU for queueing and rate accuracy.
* **Reliability transport** — the §6 extension: cost of ACK traffic when
  the fabric is clean, and completion behaviour when it is not.
* **Broadcast tree fan-out** — one tree per source versus several
  (multi-tree load balancing of control bytes).
"""

import numpy as np
import pytest

from repro.analysis import format_series, format_table
from repro.sim import SimConfig, run_simulation
from repro.workloads import ParetoSizes, poisson_trace

from conftest import current_scale, emit


@pytest.fixture(scope="module")
def ablation_trace(eval_topology):
    scale = current_scale()
    return poisson_trace(
        eval_topology,
        scale.n_flows // 2,
        scale.tau_default_ns,
        sizes=ParetoSizes(cap_bytes=20_000_000),
        seed=23,
    )


def test_ablation_young_flow_policy(benchmark, eval_topology, eval_provider, ablation_trace):
    def sweep():
        rows = {}
        for policy in ("local_waterfill", "mean_allocated", "line_rate"):
            metrics = _run_with_policy(
                eval_topology, ablation_trace, eval_provider, policy
            )
            rows[policy] = (
                metrics.fct_percentile_us(99),
                metrics.queue_occupancy_percentile_kb(99),
                metrics.mean_long_throughput_gbps(),
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_young_flow_policy",
        format_table(
            "Young-flow rate policy ablation",
            ["fct_p99_us", "queue_p99_kb", "long_tput_gbps"],
            {k: list(v) for k, v in rows.items()},
        )
        + "\n\nlocal_waterfill (the §3.1 reading) gives young flows their"
        "\ncorrect — often multi-path, above-line-rate — allocation at"
        "\narrival, so short flows finish faster; the cruder policies cap"
        "\nyoung flows at one link's rate (under-serving at low concurrency"
        "\nand over-serving at high concurrency, where the line-rate blast"
        "\nis what the 5% headroom must absorb)",
    )
    # Sender-computed allocations serve short flows best.
    assert rows["local_waterfill"][0] <= rows["line_rate"][0] * 1.05
    assert rows["local_waterfill"][2] >= rows["line_rate"][2] * 0.9


def _run_with_policy(topology, trace, provider, policy):
    """run_simulation with a custom young-flow policy on the controller."""
    from repro.broadcast.fib import BroadcastFib
    from repro.congestion.controller import ControllerConfig, RateController
    from repro.sim.engine import EventLoop
    from repro.sim.metrics import SimMetrics
    from repro.sim.network import FifoQueue, RackNetwork
    from repro.sim.runner import _default_horizon
    from repro.sim.flows import SimFlow
    from repro.sim.stacks.r2c2 import R2C2Stack, SharedControlPlane
    from repro.types import msec, usec

    loop = EventLoop()
    metrics = SimMetrics()
    flows = {a.flow_id: SimFlow(a) for a in trace}
    fib = BroadcastFib(topology, n_trees=4, seed=23)
    network = RackNetwork(loop, topology, fib=fib, queue_factory=FifoQueue)
    controller = RateController(
        topology,
        node=0,
        provider=provider,
        config=ControllerConfig(initial_rate_policy=policy),
    )
    control = SharedControlPlane(loop, network, controller)
    for node in topology.nodes():
        network.stack_at[node] = R2C2Stack(
            node, loop, network, control, flows, seed=23, metrics=metrics
        )
    control.start_epochs()
    for arrival in trace:
        flow = flows[arrival.flow_id]
        loop.schedule_at(
            arrival.start_ns, lambda f=flow: network.stack_at[f.src].start_flow(f)
        )
    horizon = _default_horizon(topology, trace)
    while loop.now < horizon:
        loop.run(until_ns=min(loop.now + msec(1), horizon))
        if all(f.completed for f in flows.values()):
            break
        if loop.pending() == 0:
            break
    metrics.flows = list(flows.values())
    metrics.max_queue_occupancy_bytes = network.max_queue_occupancies()
    return metrics


def test_ablation_reliability_cost(benchmark, eval_topology, eval_provider, ablation_trace):
    def sweep():
        rows = {}
        for label, reliable, loss in (
            ("plain", False, 0.0),
            ("reliable", True, 0.0),
            ("reliable+1% loss", True, 0.01),
        ):
            metrics = run_simulation(
                eval_topology,
                ablation_trace,
                SimConfig(stack="r2c2", reliable=reliable, loss_rate=loss, seed=23),
                provider=eval_provider,
            )
            rows[label] = (
                metrics.completion_rate(),
                metrics.fct_percentile_us(99),
                metrics.ack_bytes / max(metrics.data_bytes_on_wire, 1),
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_reliability",
        format_table(
            "Reliability transport ablation (§6)",
            ["completion", "fct_p99_us", "ack_byte_ratio"],
            {k: list(v) for k, v in rows.items()},
        )
        + "\n\nACKs serve reliability only; rates still come from the"
        "\ncontroller, so the lossless overhead is pure ACK bandwidth",
    )
    assert rows["plain"][0] == 1.0
    assert rows["reliable"][0] == 1.0
    assert rows["reliable+1% loss"][0] == 1.0
    assert rows["plain"][2] == 0.0
    assert rows["reliable"][2] > 0.0


def test_ablation_broadcast_trees(benchmark, eval_topology, eval_provider, ablation_trace):
    def sweep():
        rows = {}
        for n_trees in (1, 4, 8):
            metrics = run_simulation(
                eval_topology,
                ablation_trace,
                SimConfig(stack="r2c2", n_broadcast_trees=n_trees, seed=23),
                provider=eval_provider,
            )
            rows[n_trees] = (
                metrics.broadcast_bytes,
                metrics.fct_percentile_us(99),
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    trees = sorted(rows)
    emit(
        "ablation_broadcast_trees",
        format_series(
            "Broadcast-tree fan-out ablation",
            "n_trees",
            trees,
            {
                "broadcast_bytes": [float(rows[t][0]) for t in trees],
                "fct_p99_us": [rows[t][1] for t in trees],
            },
        )
        + "\n\ntotal broadcast bytes are tree-count-invariant (every tree"
        "\nhas n-1 edges); multi-tree choice only spreads them over links",
    )
    byte_counts = {rows[t][0] for t in trees}
    assert max(byte_counts) - min(byte_counts) <= 0.01 * max(byte_counts)
