"""Telemetry overhead guard: disabled telemetry must cost <= 2 %.

Runs the identical fixed-seed simulation three ways and compares best-of-N
wall clock:

* ``off``  — no telemetry object at all (``telemetry=None``), the baseline;
* ``null`` — telemetry *disabled* (``TelemetryConfig(metrics=False,
  trace=False)``): every instrumented site resolves falsy null sinks, so
  this measures the cost of the instrumentation hooks themselves;
* ``on``   — full metrics + trace recording, reported for reference only;
* ``obs``  — causal FCT tracer + crash flight recorder
  (``SimConfig(obs=True, flight=True)``, :mod:`repro.obs`), reference only.

``--check`` fails when ``null`` exceeds ``off`` by more than
``OVERHEAD_BUDGET`` (2 %) — the contract that lets instrumentation stay
threaded through hot paths unconditionally.  The ``off`` baseline already
executes every *disabled* repro.obs hook (they are ``is not None`` guards
compiled into the engine), so the gate covers the tracer's disabled path
too.  Reps are interleaved (off/null/on/obs, ...) and compared on the
*minimum*, which is the noise-robust estimator for "how fast can this
code path go".

Run::

    PYTHONPATH=src python benchmarks/perf/bench_telemetry_overhead.py
        [--quick] [--check] [--record --rev <label>]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from perfcommon import (
    REPO_ROOT,
    check_regression,
    load_history,
    make_parser,
    record_entry,
    report,
    save_history,
)

from repro.sim import SimConfig, run_simulation
from repro.telemetry import Telemetry, TelemetryConfig
from repro.topology import TorusTopology
from repro.workloads import ParetoSizes, poisson_trace

#: Disabled-telemetry (null-sink) runtime may exceed the no-telemetry
#: baseline by at most this fraction.
OVERHEAD_BUDGET = 0.02

SCENARIO = "sim_r2c2_telemetry_overhead_4x4x4"
SEED = 0
FULL = (200, (4, 4, 4), 7)   # n_flows, dims, interleaved reps per mode
QUICK = (60, (4, 4, 4), 15)


def _telemetry_for(mode: str):
    if mode in ("off", "obs"):
        return None
    if mode == "null":
        return Telemetry(TelemetryConfig(metrics=False, trace=False))
    return Telemetry(TelemetryConfig())


def _config_for(mode: str) -> SimConfig:
    enabled = mode == "obs"
    return SimConfig(stack="r2c2", seed=SEED, obs=enabled, flight=enabled)


def run_scenario(n_flows: int, dims: tuple, reps: int) -> dict:
    topo = TorusTopology(dims)
    trace = poisson_trace(
        topo,
        n_flows,
        5000,
        sizes=ParetoSizes(mean_bytes=100 * 1024, shape=1.05, cap_bytes=20_000_000),
        seed=SEED,
    )
    modes = ("off", "null", "on", "obs")
    best = {mode: float("inf") for mode in modes}
    for _ in range(reps):
        for mode in modes:
            telemetry = _telemetry_for(mode)
            started = time.perf_counter()
            run_simulation(topo, trace, _config_for(mode), telemetry=telemetry)
            best[mode] = min(best[mode], time.perf_counter() - started)
    null_overhead = best["null"] / best["off"] - 1.0
    on_overhead = best["on"] / best["off"] - 1.0
    obs_overhead = best["obs"] / best["off"] - 1.0
    return {
        # median_s keys the generic >3x regression gate; the null-sink run
        # is the one whose speed this benchmark exists to protect.
        "median_s": round(best["null"], 4),
        "best_off_s": round(best["off"], 4),
        "best_null_s": round(best["null"], 4),
        "best_on_s": round(best["on"], 4),
        "best_obs_s": round(best["obs"], 4),
        "null_overhead_pct": round(null_overhead * 100, 2),
        "on_overhead_pct": round(on_overhead * 100, 2),
        "obs_overhead_pct": round(obs_overhead * 100, 2),
        "n_flows": n_flows,
        "dims": "x".join(map(str, dims)),
        "reps": reps,
        "seed": SEED,
    }


def main() -> int:
    args = make_parser(__doc__.splitlines()[0]).parse_args()
    out = args.out or (REPO_ROOT / "BENCH_telemetry.json")
    doc = load_history(out, "bench_telemetry_overhead")
    print("bench_telemetry_overhead" + (" (quick)" if args.quick else ""))
    n_flows, dims, reps = QUICK if args.quick else FULL
    entry = run_scenario(n_flows, dims, reps)
    report(SCENARIO, entry)
    failures = []
    if args.check:
        # The overhead budget gates quick runs too: it is a ratio on one
        # machine, so unlike absolute timings it is CI-comparable.
        overhead = entry["null_overhead_pct"] / 100.0
        if overhead > OVERHEAD_BUDGET:
            failures.append(
                f"{SCENARIO}: disabled-telemetry overhead "
                f"{entry['null_overhead_pct']:.2f}% exceeds the "
                f"{OVERHEAD_BUDGET * 100:.0f}% budget"
            )
        if not args.quick:
            error = check_regression(doc, SCENARIO, entry["median_s"])
            if error:
                failures.append(error)
    if args.record and not args.quick:
        entry["rev"] = args.rev
        record_entry(
            doc,
            SCENARIO,
            f"interleaved off/null/on/obs telemetry runs of {n_flows} Poisson "
            f"pareto flows, r2c2 stack, {'x'.join(map(str, dims))} torus, "
            f"seed {SEED}; best-of-{reps} per mode",
            entry,
        )
        save_history(out, doc)
        print(f"recorded to {out}")
    for error in failures:
        print(f"OVERHEAD: {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
