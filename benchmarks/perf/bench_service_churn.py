"""Microbenchmark: incremental vs full-recompute allocation under churn.

The control-plane daemon's whole reason to exist is that a single flow
arrival or departure should cost O(affected links), not a rack-wide
water-fill.  This benchmark loads a 512-flow ecmp population onto an
8x8x8 torus and measures three things:

* ``full_recompute`` — one from-scratch water-fill over the population
  (what every mutation would cost without the incremental allocator);
* ``incremental_update`` — one single-flow arrival+departure cycle
  through :class:`~repro.congestion.IncrementalWaterfill` (time / 2 per
  operation);
* ``sustained_churn`` — a seeded arrival/departure mix driven through
  the daemon's :class:`~repro.service.state.ServiceState`, reported as
  operations per second.

``--check`` additionally enforces the ISSUE acceptance floor: the median
single-flow update must be at least 5x faster than the median full
recompute (quick mode shrinks sizes and skips the speedup gate — small
racks have less locality for the incremental path to exploit).

Run::

    PYTHONPATH=src python benchmarks/perf/bench_service_churn.py [--quick]
        [--check] [--record --rev <label>]
"""

from __future__ import annotations

import math
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from perfcommon import (
    REPO_ROOT,
    check_regression,
    load_history,
    make_parser,
    median_time,
    record_entry,
    report,
    save_history,
)

from repro.congestion.flowstate import FlowSpec
from repro.congestion.incremental import IncrementalWaterfill
from repro.service import ServiceState
from repro.topology import TorusTopology
from repro.validation.churn import churn_ops

SEED = 42
#: ISSUE acceptance: single-flow updates >= 5x faster than full recompute
#: on the 512-flow rack (enforced by --check in full mode only).
SPEEDUP_FLOOR = 5.0

FULL = {"dims": (8, 8, 8), "n_flows": 512, "reps": 7, "churn_ops": 400}
QUICK = {"dims": (4, 4, 4), "n_flows": 128, "reps": 3, "churn_ops": 100}


def random_flows(topo, n_flows: int, seed: int):
    """Mostly host-limited demands (paper 3.3.2), a few network-limited.

    Demand-limited flows are what gives single-flow updates locality: an
    all-infinite-demand population welds the rack into one saturation
    component and every patch degenerates to a near-full refill.
    """
    rng = random.Random(seed)
    flows = []
    for i in range(n_flows):
        src = rng.randrange(topo.n_nodes)
        dst = rng.randrange(topo.n_nodes - 1)
        if dst >= src:
            dst += 1
        demand = math.inf if rng.random() < 0.1 else rng.uniform(0.5, 4.0) * 1e9
        flows.append(FlowSpec(i, src, dst, "ecmp", demand_bps=demand))
    return flows


def build_population(dims, n_flows):
    topo = TorusTopology(dims)
    inc = IncrementalWaterfill(topo)
    for spec in random_flows(topo, n_flows, SEED):
        inc.add_flow(spec)
    return topo, inc


def bench_full_recompute(inc, reps) -> float:
    inc.scratch_allocation()  # warm the weight caches
    return median_time(lambda: inc.scratch_allocation(), reps)


def bench_incremental_update(topo, inc, n_flows, reps) -> float:
    extra = random_flows(topo, 1, SEED + 1)[0]
    extra = FlowSpec(
        n_flows + 1, extra.src, extra.dst, "ecmp", demand_bps=extra.demand_bps
    )

    def cycle():
        inc.add_flow(extra)
        inc.remove_flow(extra.flow_id)

    cycle()  # warm
    return median_time(cycle, reps) / 2.0  # per single-flow operation


def bench_sustained_churn(dims, n_ops) -> dict:
    topo = TorusTopology(dims)
    state = ServiceState(topo)
    ops = churn_ops(SEED, topo.n_nodes, n_ops, max_flows=64,
                    capacity_bps=topo.capacity_bps)
    specs = {}
    import time as _time

    started = _time.perf_counter()
    for op in ops:
        if op["op"] == "add":
            specs[op["spec"].flow_id] = op["spec"]
            state.announce(op["spec"])
        elif op["op"] == "remove":
            specs.pop(op["flow_id"], None)
            state.finish(op["flow_id"])
        else:
            spec = specs[op["flow_id"]].with_demand(op["demand_bps"])
            specs[op["flow_id"]] = spec
            state.announce(spec)
    elapsed = _time.perf_counter() - started
    stats = state.incremental.stats()
    return {
        "ops_per_s": round(n_ops / elapsed, 1),
        "incremental_ratio": round(stats["incremental_ratio"], 4),
    }


def main() -> int:
    args = make_parser(__doc__.splitlines()[0]).parse_args()
    out = args.out or (REPO_ROOT / "BENCH_service.json")
    doc = load_history(out, "bench_service_churn")
    cfg = QUICK if args.quick else FULL
    dims, n_flows, reps = cfg["dims"], cfg["n_flows"], cfg["reps"]
    label = f"{n_flows}flows_{'x'.join(map(str, dims))}"
    print("bench_service_churn" + (" (quick)" if args.quick else ""))

    topo, inc = build_population(dims, n_flows)
    full_s = bench_full_recompute(inc, reps)
    update_s = bench_incremental_update(topo, inc, n_flows, reps)
    speedup = full_s / update_s if update_s > 0 else float("inf")
    churn = bench_sustained_churn(dims, cfg["churn_ops"])

    entry = {
        "median_s": round(update_s, 9),
        "full_recompute_s": round(full_s, 6),
        "speedup": round(speedup, 1),
        "churn_ops_per_s": churn["ops_per_s"],
        "churn_incremental_ratio": churn["incremental_ratio"],
        "n_flows": n_flows,
        "dims": "x".join(map(str, dims)),
        "seed": SEED,
    }
    name = f"incremental_update_{label}"
    report(name, entry)

    failures = []
    if args.check:
        error = check_regression(doc, name, entry["median_s"])
        if error:
            failures.append(error)
        if not args.quick and speedup < SPEEDUP_FLOOR:
            failures.append(
                f"{name}: incremental update only {speedup:.1f}x faster than "
                f"full recompute (floor {SPEEDUP_FLOOR:.0f}x)"
            )
    if args.record and not args.quick:
        entry["rev"] = args.rev
        record_entry(
            doc,
            name,
            f"single-flow add/remove through IncrementalWaterfill vs one "
            f"scratch waterfill over {n_flows} random ecmp flows on a "
            f"{'x'.join(map(str, dims))} torus, plus a {cfg['churn_ops']}-op "
            f"sustained churn mix through ServiceState",
            entry,
        )
        save_history(out, doc)
        print(f"recorded to {out}")
    for error in failures:
        print(f"REGRESSION: {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
