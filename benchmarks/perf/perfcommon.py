"""Shared plumbing for the performance benchmark suite.

Unlike the figure benchmarks (which reproduce the *paper's* numbers), the
scripts in ``benchmarks/perf/`` track the *implementation's* speed over
time.  Each script measures a fixed-seed scenario and appends one history
entry per revision to a machine-readable JSON file checked into the repo
root (``BENCH_waterfill.json`` / ``BENCH_sim.json``), so every future PR
can show its before/after numbers and CI can fail on large regressions.

JSON schema::

    {
      "benchmark": "<file name>",
      "scenarios": {
        "<scenario>": {
          "description": "...",
          "history": [
            {"rev": "...", "median_s": ..., ...metrics...},
            ...
          ]
        }
      }
    }

Conventions:

* ``--quick`` shrinks repetitions/sizes for CI smoke runs; quick numbers
  are never written to the history files.
* ``--check`` compares the fresh measurement against the last checked-in
  history entry and exits 1 when ``median_s`` regressed by more than
  ``REGRESSION_FACTOR`` (default 3x) — generous enough to absorb CI
  hardware noise, tight enough to catch accidental algorithmic slowdowns.
* ``--out FILE`` / ``--rev LABEL`` control where and under which label a
  full run is recorded.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent / "src"))

from repro.core import atomic_write_text  # noqa: E402

#: A fresh run slower than ``factor * last_recorded_median`` fails --check.
REGRESSION_FACTOR = 3.0

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def make_parser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes / few reps for CI smoke runs "
                             "(results are not recorded)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the checked-in history and "
                             "exit 1 on a >%.0fx median regression"
                             % REGRESSION_FACTOR)
    parser.add_argument("--out", type=Path, default=None,
                        help="JSON history file (default: the benchmark's "
                             "BENCH_*.json in the repo root)")
    parser.add_argument("--rev", default="HEAD",
                        help="label recorded with this run's history entry")
    parser.add_argument("--record", action="store_true",
                        help="append this run to the history file")
    return parser


def median_time(fn, reps: int) -> float:
    """Median wall-clock seconds of *reps* calls to *fn*."""
    times = []
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def load_history(path: Path, benchmark: str) -> dict:
    if path.exists():
        return json.loads(path.read_text())
    return {"benchmark": benchmark, "scenarios": {}}


def record_entry(doc: dict, scenario: str, description: str, entry: dict) -> None:
    slot = doc["scenarios"].setdefault(
        scenario, {"description": description, "history": []}
    )
    slot["description"] = description
    slot["history"].append(entry)


def save_history(path: Path, doc: dict) -> None:
    # Atomic (write → fsync → rename) so an interrupted run can never
    # leave a truncated history file checked into the repo.
    atomic_write_text(path, json.dumps(doc, indent=2) + "\n")


def check_regression(doc: dict, scenario: str, median_s: float) -> str:
    """Return an error string when *median_s* regressed >3x, else ''."""
    slot = doc["scenarios"].get(scenario)
    if not slot or not slot["history"]:
        return ""
    baseline = slot["history"][-1]["median_s"]
    if median_s > baseline * REGRESSION_FACTOR:
        return (
            f"{scenario}: {median_s * 1e3:.2f} ms vs checked-in "
            f"{baseline * 1e3:.2f} ms (>{REGRESSION_FACTOR:.0f}x regression)"
        )
    return ""


def report(scenario: str, entry: dict) -> None:
    parts = [f"{key}={value}" for key, value in entry.items() if key != "rev"]
    print(f"  {scenario}: " + ", ".join(parts))
