"""Microbenchmark: the water-fill allocator on a 512-node torus.

Measures one fill over a fixed random flow set with a warm
:class:`~repro.congestion.linkweights.WeightProvider` — the steady-state
cost every controller pays per epoch (paper Figure 8's x-axis regime).
Records median wall-clock and flows/s into ``BENCH_waterfill.json``.

Run::

    PYTHONPATH=src python benchmarks/perf/bench_waterfill.py [--quick]
        [--check] [--record --rev <label>]
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from perfcommon import (
    REPO_ROOT,
    check_regression,
    load_history,
    make_parser,
    median_time,
    record_entry,
    report,
    save_history,
)

from repro.congestion.flowstate import FlowSpec
from repro.congestion.linkweights import WeightProvider
from repro.congestion.waterfill import waterfill
from repro.topology import TorusTopology

SCENARIOS = {
    # name: (n_flows, torus dims, reps)
    "waterfill_512flows_8x8x8": (512, (8, 8, 8), 7),
    "waterfill_128flows_4x4x4": (128, (4, 4, 4), 9),
}
QUICK_REPS = 3
SEED = 42
HEADROOM = 0.05


def random_flows(topo, n_flows: int, seed: int):
    rng = random.Random(seed)
    flows = []
    for i in range(n_flows):
        src = rng.randrange(topo.n_nodes)
        dst = rng.randrange(topo.n_nodes - 1)
        if dst >= src:
            dst += 1
        flows.append(FlowSpec(i, src, dst, "rps"))
    return flows


def run_scenario(n_flows: int, dims: tuple, reps: int) -> dict:
    topo = TorusTopology(dims)
    provider = WeightProvider(topo)
    flows = random_flows(topo, n_flows, SEED)
    waterfill(topo, flows, provider, headroom=HEADROOM)  # warm the caches
    median_s = median_time(
        lambda: waterfill(topo, flows, provider, headroom=HEADROOM), reps
    )
    return {
        "median_s": round(median_s, 6),
        "flows_per_s": round(n_flows / median_s, 1),
        "n_flows": n_flows,
        "dims": "x".join(map(str, dims)),
        "seed": SEED,
    }


def main() -> int:
    args = make_parser(__doc__.splitlines()[0]).parse_args()
    out = args.out or (REPO_ROOT / "BENCH_waterfill.json")
    doc = load_history(out, "bench_waterfill")
    print("bench_waterfill" + (" (quick)" if args.quick else ""))
    failures = []
    for name, (n_flows, dims, reps) in SCENARIOS.items():
        if args.quick:
            reps = QUICK_REPS
        entry = run_scenario(n_flows, dims, reps)
        report(name, entry)
        error = check_regression(doc, name, entry["median_s"]) if args.check else ""
        if error:
            failures.append(error)
        if args.record and not args.quick:
            entry["rev"] = args.rev
            record_entry(
                doc,
                name,
                f"one waterfill() over {n_flows} random rps flows on a "
                f"{'x'.join(map(str, dims))} torus, warm weight cache",
                entry,
            )
    if args.record and not args.quick:
        save_history(out, doc)
        print(f"recorded to {out}")
    for error in failures:
        print(f"REGRESSION: {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
