"""Sharded-vs-serial simulator speedup on the Fig. 12-scale workload.

Runs the same fixed-seed Poisson workload on a 512-node (8x8x8) torus
through the serial engine and through ``repro.distsim`` with K=4 process
shards, records both wall clocks and the speedup into
``BENCH_distsim.json`` — and *always* asserts byte-identity of the two
runs' canonical metrics first: a fast wrong answer is a failure, not a
result.

The speedup gate (>= 1.7x at 4 shards) only applies when the
machine actually has parallelism to offer (``os.cpu_count() >= 2``); the
entry records the CPU count honestly either way so history numbers are
interpretable.

Run::

    PYTHONPATH=src python benchmarks/perf/bench_distsim.py [--quick]
        [--check] [--record --rev <label>]
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from perfcommon import (
    REPO_ROOT,
    check_regression,
    load_history,
    make_parser,
    record_entry,
    report,
    save_history,
)

from repro.distsim import canonical_metrics, run_sharded_simulation
from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.workloads import ParetoSizes, poisson_trace

SCENARIOS = {
    # name: (dims, n_flows, shards, reps)
    "distsim_r2c2_512node_8x8x8_k4": ((8, 8, 8), 400, 4, 1),
}
QUICK = {"dims": (4, 4), "n_flows": 80, "reps": 1}
SEED = 12
#: Required speedup at 4 shards on a multi-core machine (acceptance gate).
SPEEDUP_TARGET = 1.7


def _workload(dims: tuple, n_flows: int):
    topo = TorusTopology(dims)
    trace = poisson_trace(
        topo,
        n_flows,
        5000,
        sizes=ParetoSizes(mean_bytes=100 * 1024, shape=1.05, cap_bytes=20_000_000),
        seed=SEED,
    )
    return topo, trace


def run_scenario(dims: tuple, n_flows: int, shards: int, reps: int) -> dict:
    topo, trace = _workload(dims, n_flows)
    config = SimConfig(stack="r2c2", control_plane="per_node", seed=SEED)

    serial_times, sharded_times = [], []
    serial_digest = sharded_digest = None
    for _ in range(reps):
        started = time.perf_counter()
        serial = run_simulation(topo, trace, config)
        serial_times.append(time.perf_counter() - started)
        serial_digest = canonical_metrics(serial)

        started = time.perf_counter()
        sharded = run_sharded_simulation(
            topo, trace, config, shards=shards, executor="process"
        )
        sharded_times.append(time.perf_counter() - started)
        sharded_digest = canonical_metrics(sharded.metrics)
        sync_profile = sharded.sync_profile or {}

    if serial_digest != sharded_digest:
        raise SystemExit(
            f"BYTE-IDENTITY VIOLATION: {shards}-shard run diverged from the "
            f"serial engine on dims={dims}, n_flows={n_flows}, seed={SEED}"
        )

    serial_s = sorted(serial_times)[len(serial_times) // 2]
    sharded_s = sorted(sharded_times)[len(sharded_times) // 2]
    utilization = sync_profile.get("lookahead_utilization")
    return {
        "median_s": round(sharded_s, 4),
        "serial_s": round(serial_s, 4),
        "speedup": round(serial_s / sharded_s, 3),
        "byte_identical": True,
        "shards": shards,
        "cpus": os.cpu_count(),
        "n_flows": n_flows,
        "dims": "x".join(map(str, dims)),
        "seed": SEED,
        # Sync-profiler view of the last rep (repro.obs tentpole): where
        # the sharded wall clock went and how full the lookahead windows
        # ran — the numbers that explain a speedup shortfall.
        "rounds": sync_profile.get("rounds"),
        "blocked_s": round(sync_profile.get("blocked_s", 0.0), 4),
        "lookahead_utilization": (
            round(utilization, 4) if utilization is not None else None
        ),
    }


def main() -> int:
    args = make_parser(__doc__.splitlines()[0]).parse_args()
    out = args.out or (REPO_ROOT / "BENCH_distsim.json")
    doc = load_history(out, "bench_distsim")
    print("bench_distsim" + (" (quick)" if args.quick else ""))
    failures = []
    for name, (dims, n_flows, shards, reps) in SCENARIOS.items():
        if args.quick:
            dims, n_flows, reps = QUICK["dims"], QUICK["n_flows"], QUICK["reps"]
        entry = run_scenario(dims, n_flows, shards, reps)
        report(name, entry)
        if not args.quick:
            cpus = os.cpu_count() or 1
            if cpus >= 2 and entry["speedup"] < SPEEDUP_TARGET:
                failures.append(
                    f"{name}: speedup {entry['speedup']:.2f}x < "
                    f"{SPEEDUP_TARGET}x at {shards} shards on {cpus} CPUs"
                )
            elif cpus < 2:
                print(
                    f"  (speedup gate skipped: {cpus} CPU — process shards "
                    f"cannot run concurrently here)"
                )
        if args.check and not args.quick:
            error = check_regression(doc, name, entry["median_s"])
            if error:
                failures.append(error)
        if args.record and not args.quick:
            entry = dict(entry, rev=args.rev)
            record_entry(doc, name, __doc__.splitlines()[0], entry)
    if args.record and not args.quick:
        save_history(out, doc)
        print(f"recorded under rev {args.rev!r} in {out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
