"""End-to-end simulator throughput on a fixed-seed Poisson workload.

Runs the full R2C2 stack (shared control plane) on a 64-node torus and
records wall-clock and events/s into ``BENCH_sim.json``.  Note that
``events_processed`` is not comparable across revisions that change event
batching (a coalesced broadcast fan-out counts as one event); wall-clock
for the identical workload is the cross-revision metric.

Run::

    PYTHONPATH=src python benchmarks/perf/bench_sim_throughput.py [--quick]
        [--check] [--record --rev <label>]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from perfcommon import (
    REPO_ROOT,
    check_regression,
    load_history,
    make_parser,
    record_entry,
    report,
    save_history,
)

from repro.sim import SimConfig, run_simulation
from repro.telemetry import Telemetry, TelemetryConfig
from repro.topology import TorusTopology
from repro.workloads import ParetoSizes, poisson_trace

SCENARIOS = {
    # name: (n_flows, dims, reps)
    "sim_r2c2_200flows_4x4x4": (200, (4, 4, 4), 3),
}
QUICK_FLOWS = 60
SEED = 0


def _scenario_workload(n_flows: int, dims: tuple):
    topo = TorusTopology(dims)
    trace = poisson_trace(
        topo,
        n_flows,
        5000,
        sizes=ParetoSizes(mean_bytes=100 * 1024, shape=1.05, cap_bytes=20_000_000),
        seed=SEED,
    )
    return topo, trace


def telemetry_snapshot(n_flows: int, dims: tuple) -> dict:
    """Compact metrics snapshot from an extra, *untimed* instrumented run.

    Counters, gauges and histogram quantiles only — per-link series would
    bloat the history file.  Recorded alongside the timings so each
    revision's entry carries the workload's telemetry fingerprint (wire
    bytes, epochs, queue occupancy) next to its wall clock.
    """
    topo, trace = _scenario_workload(n_flows, dims)
    telemetry = Telemetry(TelemetryConfig(trace=False, per_link_series=False))
    run_simulation(topo, trace, SimConfig(stack="r2c2", seed=SEED), telemetry=telemetry)
    snap = telemetry.metrics.snapshot()
    return {
        "counters": snap["counters"],
        "gauges": snap["gauges"],
        "histogram_p99": {
            name: hist.quantile(0.99)
            for name, hist in (
                (h.name, h)
                for h in telemetry.metrics.instruments()
                if hasattr(h, "quantile")
            )
        },
    }


def run_scenario(n_flows: int, dims: tuple, reps: int) -> dict:
    topo, trace = _scenario_workload(n_flows, dims)
    runs = []
    for _ in range(reps):
        started = time.perf_counter()
        metrics = run_simulation(topo, trace, SimConfig(stack="r2c2", seed=SEED))
        runs.append((time.perf_counter() - started, metrics.events_processed))
    runs.sort()
    median_s, events = runs[len(runs) // 2]
    return {
        "median_s": round(median_s, 4),
        "events_processed": events,
        "events_per_s": round(events / median_s, 1),
        "n_flows": n_flows,
        "dims": "x".join(map(str, dims)),
        "seed": SEED,
    }


def main() -> int:
    args = make_parser(__doc__.splitlines()[0]).parse_args()
    out = args.out or (REPO_ROOT / "BENCH_sim.json")
    doc = load_history(out, "bench_sim_throughput")
    print("bench_sim_throughput" + (" (quick)" if args.quick else ""))
    failures = []
    for name, (n_flows, dims, reps) in SCENARIOS.items():
        if args.quick:
            n_flows, reps = QUICK_FLOWS, 1
        entry = run_scenario(n_flows, dims, reps)
        report(name, entry)
        # Quick mode simulates a smaller workload; its timings are not
        # comparable to the recorded full-size history, so --check only
        # gates full runs.
        if args.check and not args.quick:
            error = check_regression(doc, name, entry["median_s"])
            if error:
                failures.append(error)
        if args.record and not args.quick:
            entry["rev"] = args.rev
            entry["telemetry"] = telemetry_snapshot(n_flows, dims)
            record_entry(
                doc,
                name,
                f"run_simulation of {n_flows} Poisson pareto flows, r2c2 "
                f"stack, {'x'.join(map(str, dims))} torus, seed {SEED}",
                entry,
            )
    if args.record and not args.quick:
        save_history(out, doc)
        print(f"recorded to {out}")
    for error in failures:
        print(f"REGRESSION: {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
