"""Macrobenchmark: fabric synthesis + hierarchical weight computation.

Tracks the two costs that gate multi-rack campaigns (the synth tentpole's
10k-node axis): deterministically synthesizing a flat rack-of-racks fabric,
and computing template-lifted WLB/VLB link weights on it, at 1k / 5k / 10k
nodes.  Records median synthesis wall-clock and weight-computation
throughput (source-destination pairs per second) into ``BENCH_synth.json``.

Run::

    PYTHONPATH=src python benchmarks/perf/bench_synth_scale.py [--quick]
        [--check] [--record --rev <label>]
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from perfcommon import (
    REPO_ROOT,
    check_regression,
    load_history,
    make_parser,
    median_time,
    record_entry,
    report,
    save_history,
)

from repro.routing.base import make_protocol
from repro.topology import FabricSpec, synthesize

SCENARIOS = {
    # name: (n_racks, rack_dims, synth reps, weight pairs)
    "synth_flat_1k": (8, (5, 5, 5), 5, 200),
    "synth_flat_5k": (40, (5, 5, 5), 3, 200),
    "synth_flat_10k": (125, (4, 4, 5), 3, 200),
}
QUICK_SCENARIOS = ("synth_flat_1k",)
QUICK_REPS = 1
SEED = 42


def _spec(n_racks: int, rack_dims: tuple) -> FabricSpec:
    return FabricSpec(
        design="flat",
        rack="torus",
        rack_dims=rack_dims,
        n_racks=n_racks,
        gateway_ports=4,
        oversubscription=400.0,
        seed=SEED,
    )


def _weight_throughput(topology, protocol_name: str, n_pairs: int) -> float:
    """Cold pairs/s for ``link_weights`` over seeded random cross-rack pairs.

    A fresh protocol per repetition so every measurement pays the real
    template-dag and rack-route computation, not memo-dict lookups.
    """
    rng = random.Random(SEED)
    pairs = []
    for _ in range(n_pairs):
        src = rng.randrange(topology.n_nodes)
        dst = rng.randrange(topology.n_nodes - 1)
        if dst >= src:
            dst += 1
        pairs.append((src, dst))

    def run():
        protocol = make_protocol(protocol_name, topology)
        for src, dst in pairs:
            protocol.link_weights(src, dst)

    return n_pairs / median_time(run, 3)


def run_scenario(n_racks: int, rack_dims: tuple, reps: int, n_pairs: int) -> dict:
    spec = _spec(n_racks, rack_dims)
    median_s = median_time(lambda: synthesize(spec), reps)
    fabric = synthesize(spec)
    entry = {
        "median_s": round(median_s, 6),
        "nodes": fabric.topology.n_nodes,
        "racks": n_racks,
        "links": fabric.topology.n_links,
        "nodes_per_s": round(fabric.topology.n_nodes / median_s, 1),
        "wlb_pairs_per_s": round(
            _weight_throughput(fabric.topology, "hier_wlb", n_pairs), 1
        ),
        "vlb_pairs_per_s": round(
            _weight_throughput(fabric.topology, "hier_vlb", n_pairs), 1
        ),
        "seed": SEED,
    }
    return entry


def main() -> int:
    args = make_parser(__doc__.splitlines()[0]).parse_args()
    out = args.out or (REPO_ROOT / "BENCH_synth.json")
    doc = load_history(out, "bench_synth_scale")
    print("bench_synth_scale" + (" (quick)" if args.quick else ""))
    failures = []
    for name, (n_racks, rack_dims, reps, n_pairs) in SCENARIOS.items():
        if args.quick:
            if name not in QUICK_SCENARIOS:
                continue
            reps, n_pairs = QUICK_REPS, 50
        entry = run_scenario(n_racks, rack_dims, reps, n_pairs)
        report(name, entry)
        error = check_regression(doc, name, entry["median_s"]) if args.check else ""
        if error:
            failures.append(error)
        if args.record and not args.quick:
            entry["rev"] = args.rev
            record_entry(
                doc,
                name,
                f"synthesize a flat fabric of {n_racks} x "
                f"{'x'.join(map(str, rack_dims))} torus racks "
                f"(seed {SEED}), then template-lifted hier_wlb/hier_vlb "
                f"link weights over {n_pairs} rack-shift pairs",
                entry,
            )
    if args.record and not args.quick:
        save_history(out, doc)
        print(f"recorded to {out}")
    for error in failures:
        print(f"REGRESSION: {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
