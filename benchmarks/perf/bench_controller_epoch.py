"""Controller epoch cost: demand-churn epochs vs short-circuited idle ones.

Drives one :class:`~repro.congestion.controller.RateController` through
steady-state epochs on a 512-node torus with 512 flows and reads the cost
from its own ``RecomputeStats`` — the quantity Figure 8 reports.  Two
regimes are measured:

* ``epoch_512flows_demand_churn`` — one flow's demand estimate changes
  between epochs, forcing a full (warm-matrix) water-fill;
* ``epoch_512flows_idle`` — nothing changed, the generation short-circuit
  returns the previous allocation.

The script also *asserts* the paper's feasibility claim on CI hardware
with generous margin: an idle epoch must cost well under the 500 µs
interval ρ, and even a churn epoch must stay within ``CHURN_RHO_BUDGET``
intervals (it runs amortized across nodes in practice).

Run::

    PYTHONPATH=src python benchmarks/perf/bench_controller_epoch.py
        [--quick] [--check] [--record --rev <label>]
"""

from __future__ import annotations

import random
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from perfcommon import (
    REPO_ROOT,
    check_regression,
    load_history,
    make_parser,
    record_entry,
    report,
    save_history,
)

from repro.congestion.controller import RateController
from repro.congestion.flowstate import FlowSpec
from repro.congestion.linkweights import WeightProvider
from repro.topology import TorusTopology
from repro.types import usec

SEED = 7
N_FLOWS = 512
DIMS = (8, 8, 8)
EPOCHS = 20
QUICK = (128, (4, 4, 4), 8)
RHO_NS = usec(500)
#: A demand-churn epoch may cost at most this many intervals on CI hardware.
CHURN_RHO_BUDGET = 40


def run_scenarios(n_flows: int, dims: tuple, epochs: int) -> dict:
    topo = TorusTopology(dims)
    controller = RateController(topo, 0, provider=WeightProvider(topo))
    rng = random.Random(SEED)
    for i in range(n_flows):
        src = rng.randrange(topo.n_nodes)
        dst = rng.randrange(topo.n_nodes - 1)
        if dst >= src:
            dst += 1
        controller.table.add(FlowSpec(i, src, dst, "rps"))
    now = 0
    controller.recompute(now)  # warm: assembles and caches the level matrix

    churn = []
    for _ in range(epochs):
        now += RHO_NS
        controller.table.update_demand(rng.randrange(n_flows), rng.uniform(1e8, 1e10))
        controller.recompute(now)
        stats = controller.stats[-1]
        assert not stats.skipped, "demand churn must force a real recompute"
        churn.append(stats.duration_ns)

    idle = []
    for _ in range(epochs):
        now += RHO_NS
        controller.recompute(now)
        stats = controller.stats[-1]
        assert stats.skipped, "unchanged table must short-circuit"
        idle.append(stats.duration_ns)

    churn_ns = statistics.median(churn)
    idle_ns = statistics.median(idle)
    # The paper's feasibility bar (§3.3.2 / Figure 8): recomputation must
    # fit in the interval.  Idle epochs must beat rho outright; churn
    # epochs get a generous CI-hardware budget.
    assert idle_ns < RHO_NS, (
        f"idle epoch {idle_ns} ns exceeds rho={RHO_NS} ns"
    )
    assert churn_ns < CHURN_RHO_BUDGET * RHO_NS, (
        f"churn epoch {churn_ns} ns exceeds {CHURN_RHO_BUDGET}x rho"
    )
    base = {"n_flows": n_flows, "dims": "x".join(map(str, dims)), "seed": SEED}
    return {
        "epoch_demand_churn": {
            "median_s": round(churn_ns / 1e9, 6),
            "median_epoch_ns": int(churn_ns),
            "rho_fraction": round(churn_ns / RHO_NS, 3),
            **base,
        },
        "epoch_idle_short_circuit": {
            "median_s": round(idle_ns / 1e9, 9),
            "median_epoch_ns": int(idle_ns),
            "rho_fraction": round(idle_ns / RHO_NS, 6),
            **base,
        },
    }


def main() -> int:
    args = make_parser(__doc__.splitlines()[0]).parse_args()
    out = args.out or (REPO_ROOT / "BENCH_waterfill.json")
    doc = load_history(out, "bench_waterfill")
    print("bench_controller_epoch" + (" (quick)" if args.quick else ""))
    n_flows, dims, epochs = (
        QUICK if args.quick else (N_FLOWS, DIMS, EPOCHS)
    )
    entries = run_scenarios(n_flows, dims, epochs)
    failures = []
    for scenario, entry in entries.items():
        name = f"{scenario}_{n_flows}flows"
        report(name, entry)
        # Quick mode shrinks the scenario; only full runs compare against
        # the recorded history.
        if args.check and not args.quick:
            error = check_regression(doc, name, entry["median_s"])
            if error:
                failures.append(error)
        if args.record and not args.quick:
            entry["rev"] = args.rev
            record_entry(
                doc,
                name,
                f"RecomputeStats median over {epochs} steady-state epochs, "
                f"{n_flows} flows on a {'x'.join(map(str, dims))} torus "
                f"({scenario.replace('_', ' ')})",
                entry,
            )
    if args.record and not args.quick:
        save_history(out, doc)
        print(f"recorded to {out}")
    for error in failures:
        print(f"REGRESSION: {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
