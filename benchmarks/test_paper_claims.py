"""Supporting quantitative claims from outside the figure set.

Each test pins one number the paper states in prose:

* §2.2.2 — an average flow in a small 3D-torus rack has 1,680 minimal paths.
* §3.2  — one 512-node broadcast is ≈8 KB on the wire; announcing a 10 KB
  flow costs 26.66 %; all-pairs flows generate ≈681 KB per link.
* §3.2  — the rack expects "less than two failures a day".
* §4.2  — the per-{protocol, destination} weight cache fits in ~6 MB for a
  512-node rack.
* §6   — a broadcast on a 512-host folded Clos is ≈8.7 KB.
* §3.3.1 — Figure 4's {2/3, 2/3} vs {1, 1} allocation gap.
"""

import pytest

from repro.broadcast import (
    FailureRecovery,
    all_pairs_broadcast_bytes_per_link,
    broadcast_bytes_total,
    flow_event_overhead,
)
from repro.congestion import FlowSpec, PathFlow, WeightProvider, maxmin_rates, waterfill
from repro.routing.static import StaticPathSet
from repro.topology import FoldedClosTopology, GraphTopology, TorusTopology, count_shortest_paths

from conftest import emit


def test_paper_prose_claims(benchmark):
    lines = []

    def check(label, measured, paper, tolerance):
        lines.append(f"{label}: measured={measured:.4g} paper={paper:.4g}")
        assert measured == pytest.approx(paper, rel=tolerance), label

    def run_all():
        # 1,680 minimal paths for a (3,3,3) displacement.
        torus = TorusTopology((8, 8, 8))
        check(
            "minimal paths, (3,3,3) displacement",
            count_shortest_paths(torus, torus.node_at((0, 0, 0)), torus.node_at((3, 3, 3))),
            1680,
            0,
        )
        # Broadcast byte math.
        check("512-node broadcast bytes", broadcast_bytes_total(512), 8176, 0.01)
        check(
            "10KB flow announce overhead",
            flow_event_overhead(10 * 1024, 512, 6.0),
            0.2666,
            0.02,
        )
        check(
            "all-pairs broadcast KB/link",
            all_pairs_broadcast_bytes_per_link(torus) / 1000,
            681,
            0.04,
        )
        # Failure-rate estimate.
        check(
            "failures/day, 512 nodes x 4 CPUs",
            FailureRecovery().expected_failures_per_day(512),
            1.68,
            0.01,
        )
        # Folded-Clos broadcast cost (§6).
        clos = FoldedClosTopology(512, radix=32)
        check(
            "Clos broadcast bytes",
            broadcast_bytes_total(clos.n_nodes),
            8700,
            0.04,
        )
        # Weight-cache footprint (§4.2): 511 destinations x 3072 links
        # bounded by 6 MB; our sparse cache stores only used links.
        provider = WeightProvider(torus)
        for dst in range(1, 512, 8):
            provider.weights_for(FlowSpec(dst, 0, dst, "rps"))
        projected = provider.memory_footprint_bytes() * 511 / len(range(1, 512, 8))
        lines.append(f"projected weight cache: {projected / 1e6:.2f} MB (paper < 6 MB)")
        assert projected < 6e6
        # Figure 4 allocation gap.
        graph = GraphTopology(
            4, [(0, 3), (0, 2), (2, 3), (1, 2)], capacity_bps=1.0, latency_ns=0
        )
        static = StaticPathSet(graph)
        static.set_paths(0, 3, [[0, 3], [0, 2, 3]])
        static.set_paths(1, 3, [[1, 2, 3]])
        sp = WeightProvider(graph, {"static": static})
        alloc = waterfill(
            graph, [FlowSpec(1, 0, 3, "static"), FlowSpec(2, 1, 3, "static")], sp
        )
        check("Fig4 R2C2 rate", alloc.rates_bps[1], 2 / 3, 0.001)
        ideal = maxmin_rates(
            graph, [PathFlow(1, [[0, 3], [0, 2, 3]]), PathFlow(2, [[1, 2, 3]])]
        )
        check("Fig4 exact max-min rate", ideal[1], 1.0, 0.001)
        return lines

    result = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("paper_prose_claims", "\n".join(result))
