"""Shared infrastructure for the figure-regeneration benchmarks.

Every benchmark regenerates one table or figure from the paper's evaluation
(§5), printing the same rows/series the paper reports and appending them to
``benchmarks/results/``.  Absolute numbers depend on the simulated scale;
the *shape* (who wins, by what factor, where crossovers fall) is the claim
being reproduced.

Scale is controlled by the ``REPRO_SCALE`` environment variable:

* ``small`` (default) — CI-friendly: 64-node racks, hundreds of flows.
* ``medium`` — 216-node racks, thousands of flows.
* ``paper`` — the paper's full 512-node 3D torus parameters (slow!).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.congestion.linkweights import WeightProvider
from repro.core import atomic_write_text

# The scale tables are owned by repro.experiments.scales (the campaign
# runner shares them); re-exported here so benchmarks keep importing them
# from conftest as before.
from repro.experiments.scales import SCALE_ENV_VAR, SCALES, Scale
from repro.experiments.scales import current_scale as _current_scale
from repro.topology import TorusTopology
from repro.types import usec

RESULTS_DIR = Path(__file__).parent / "results"

__all__ = ["RESULTS_DIR", "SCALES", "Scale", "current_scale", "emit", "sweep_run"]


def current_scale() -> Scale:
    """The scale selected by REPRO_SCALE (default: small)."""
    return _current_scale()


def pytest_configure(config):
    # Validate REPRO_SCALE up front so a typo fails with one clear usage
    # error instead of an identical collection-time traceback per module.
    name = os.environ.get(SCALE_ENV_VAR)
    if name is not None and name not in SCALES:
        raise pytest.UsageError(
            f"{SCALE_ENV_VAR} must be one of {sorted(SCALES)}, got {name!r}"
        )


def emit(figure: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {figure} [scale={current_scale().name}] =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(RESULTS_DIR / f"{figure}.txt", banner + text + "\n")


@pytest.fixture(scope="session")
def scale() -> Scale:
    """The active experiment scale."""
    return current_scale()


@pytest.fixture(scope="session")
def eval_topology(scale):
    """The evaluation rack: a 3D torus with 10 Gbps / 100 ns links (§5.2)."""
    return TorusTopology(scale.torus_dims)


@pytest.fixture(scope="session")
def eval_provider(eval_topology):
    """Session-shared link-weight cache (the expensive part of sweeps)."""
    return WeightProvider(eval_topology)


# ----------------------------------------------------------------------
# Shared packet-simulation sweep (Figures 10-14 reuse these runs)
# ----------------------------------------------------------------------
_SWEEP_CACHE = {}


def sweep_run(topology, provider, stack: str, tau_ns: int, n_flows: int, seed: int = 7):
    """Memoized packet-simulation run for the τ sweep."""
    from repro.sim import SimConfig, run_simulation
    from repro.workloads import ParetoSizes, poisson_trace

    key = (id(topology), stack, tau_ns, n_flows, seed)
    if key not in _SWEEP_CACHE:
        trace = poisson_trace(
            topology,
            n_flows,
            tau_ns,
            sizes=ParetoSizes(mean_bytes=100 * 1024, shape=1.05, cap_bytes=20_000_000),
            seed=seed,
        )
        config = SimConfig(stack=stack, recompute_interval_ns=usec(500), seed=seed)
        _SWEEP_CACHE[key] = run_simulation(
            topology, trace, config, provider=provider if stack == "r2c2" else None
        )
    return _SWEEP_CACHE[key]
