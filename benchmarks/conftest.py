"""Shared infrastructure for the figure-regeneration benchmarks.

Every benchmark regenerates one table or figure from the paper's evaluation
(§5), printing the same rows/series the paper reports and appending them to
``benchmarks/results/``.  Absolute numbers depend on the simulated scale;
the *shape* (who wins, by what factor, where crossovers fall) is the claim
being reproduced.

Scale is controlled by the ``REPRO_SCALE`` environment variable:

* ``small`` (default) — CI-friendly: 64-node racks, hundreds of flows.
* ``medium`` — 216-node racks, thousands of flows.
* ``paper`` — the paper's full 512-node 3D torus parameters (slow!).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.congestion.linkweights import WeightProvider
from repro.topology import TorusTopology
from repro.types import usec

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class Scale:
    """Per-scale experiment parameters."""

    name: str
    torus_dims: tuple
    n_flows: int
    tau_sweep_ns: tuple  # flow inter-arrival times for the load sweeps
    tau_default_ns: int
    crossval_flows: int
    fig18_loads: tuple

    @property
    def n_nodes(self) -> int:
        n = 1
        for d in self.torus_dims:
            n *= d
        return n


SCALES = {
    "small": Scale(
        name="small",
        torus_dims=(4, 4, 4),
        n_flows=600,
        tau_sweep_ns=(1_000, 5_000, 25_000),
        tau_default_ns=2_000,
        crossval_flows=60,
        fig18_loads=(0.125, 0.25, 0.5, 0.75, 1.0),
    ),
    "medium": Scale(
        name="medium",
        torus_dims=(6, 6, 6),
        n_flows=1_500,
        tau_sweep_ns=(500, 1_000, 10_000, 50_000),
        tau_default_ns=1_000,
        crossval_flows=150,
        fig18_loads=(0.125, 0.25, 0.5, 0.75, 1.0),
    ),
    "paper": Scale(
        name="paper",
        torus_dims=(8, 8, 8),
        n_flows=4_000,
        tau_sweep_ns=(100, 1_000, 10_000, 100_000),
        tau_default_ns=1_000,
        crossval_flows=1_000,
        fig18_loads=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    ),
}


def current_scale() -> Scale:
    """The scale selected by REPRO_SCALE (default: small)."""
    name = os.environ.get("REPRO_SCALE", "small")
    if name not in SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(SCALES)}, got {name!r}")
    return SCALES[name]


def emit(figure: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {figure} [scale={current_scale().name}] =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{figure}.txt"
    path.write_text(banner + text + "\n")


@pytest.fixture(scope="session")
def scale() -> Scale:
    """The active experiment scale."""
    return current_scale()


@pytest.fixture(scope="session")
def eval_topology(scale):
    """The evaluation rack: a 3D torus with 10 Gbps / 100 ns links (§5.2)."""
    return TorusTopology(scale.torus_dims)


@pytest.fixture(scope="session")
def eval_provider(eval_topology):
    """Session-shared link-weight cache (the expensive part of sweeps)."""
    return WeightProvider(eval_topology)


# ----------------------------------------------------------------------
# Shared packet-simulation sweep (Figures 10-14 reuse these runs)
# ----------------------------------------------------------------------
_SWEEP_CACHE = {}


def sweep_run(topology, provider, stack: str, tau_ns: int, n_flows: int, seed: int = 7):
    """Memoized packet-simulation run for the τ sweep."""
    from repro.sim import SimConfig, run_simulation
    from repro.workloads import ParetoSizes, poisson_trace

    key = (id(topology), stack, tau_ns, n_flows, seed)
    if key not in _SWEEP_CACHE:
        trace = poisson_trace(
            topology,
            n_flows,
            tau_ns,
            sizes=ParetoSizes(mean_bytes=100 * 1024, shape=1.05, cap_bytes=20_000_000),
            seed=seed,
        )
        config = SimConfig(stack=stack, recompute_interval_ns=usec(500), seed=seed)
        _SWEEP_CACHE[key] = run_simulation(
            topology, trace, config, provider=provider if stack == "r2c2" else None
        )
    return _SWEEP_CACHE[key]
