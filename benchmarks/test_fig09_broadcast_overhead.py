"""Figure 9: network capacity used for broadcasting grows linearly with the
fraction of bytes carried by small flows, and is lower on larger-diameter
topologies (3D mesh, 2D torus) than on the 3D torus.

The paper's anchor point: at 5 % small-flow bytes, 1.3 % of capacity goes to
broadcasts on a 512-node 3D torus (10 KB small flows, 35 MB large flows).
We regenerate the analytic curves and additionally validate one point with
measured bytes from a packet simulation.
"""

import pytest

from repro.analysis import format_series
from repro.broadcast import broadcast_capacity_fraction
from repro.sim import SimConfig, run_simulation
from repro.topology import MeshTopology, TorusTopology
from repro.workloads import FixedSize, poisson_trace

from conftest import current_scale, emit

FRACTIONS = (0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def analytic_curves():
    topologies = {
        "3D torus": TorusTopology((8, 8, 8)),
        "3D mesh": MeshTopology((8, 8, 8)),
        "2D torus": TorusTopology((16, 32)),
    }
    curves = {}
    for name, topo in topologies.items():
        hops = topo.average_distance()
        curves[name] = [
            100 * broadcast_capacity_fraction(f, topo.n_nodes, hops)
            for f in FRACTIONS
        ]
    return curves


def measured_point(scale):
    """Simulate a small-flow-only workload and measure broadcast share."""
    topo = TorusTopology(scale.torus_dims)
    trace = poisson_trace(
        topo, min(scale.n_flows, 400), 5_000, sizes=FixedSize(10_000), seed=9
    )
    metrics = run_simulation(topo, trace, SimConfig(stack="r2c2", seed=9))
    return metrics, topo


def test_fig09_broadcast_capacity_fraction(benchmark):
    scale = current_scale()
    curves = benchmark.pedantic(analytic_curves, rounds=1, iterations=1)
    metrics, topo = measured_point(scale)

    measured = 100 * metrics.broadcast_capacity_fraction()
    predicted = 100 * broadcast_capacity_fraction(
        1.0,
        topo.n_nodes,
        topo.average_distance(),
        small_flow_bytes=10_000,
    )
    text = format_series(
        "Fig 9: % capacity used for broadcast vs % bytes in small flows",
        "small_byte_frac",
        [f"{f:.2f}" for f in FRACTIONS],
        curves,
    )
    text += (
        f"\n\nanchor: 5% small bytes on 3D torus -> "
        f"{curves['3D torus'][1]:.2f}% (paper: 1.3%)"
        f"\nmeasured (packet sim, all-small workload, {topo.name}): "
        f"{measured:.2f}% vs analytic {predicted:.2f}%"
    )
    emit("fig09_broadcast_overhead", text)

    # Anchor point.
    assert curves["3D torus"][1] == pytest.approx(1.3, abs=0.2)
    # Linearity and topology ordering.
    for name, curve in curves.items():
        assert curve == sorted(curve)
        # At 0% small bytes only the (rare) large flows are announced.
        assert curve[0] < 0.05
    for i in range(len(FRACTIONS)):
        assert curves["3D mesh"][i] <= curves["3D torus"][i] + 1e-9
        assert curves["2D torus"][i] <= curves["3D torus"][i] + 1e-9
    # The packet simulator's measured share is in the analytic ballpark
    # (the sim adds queueing, finite horizon and header bytes).
    assert measured == pytest.approx(predicted, rel=0.5)
