"""Figures 10-14: R2C2 vs TCP vs PFQ on the evaluation rack.

* Fig 10 — CDF of FCT for short flows (< 100 KB) at the default τ.
* Fig 11 — CDF of average throughput for long flows (> 1 MB).
* Fig 12 — p99 short-flow FCT normalized to TCP, across τ.
* Fig 13 — mean long-flow throughput normalized to TCP, across τ.
* Fig 14 — median / p99 of per-port max queue occupancy across τ (R2C2).

Paper headlines at 512 nodes, τ=1 µs: TCP is 3.21x worse than R2C2 at the
p99 short-flow FCT and 2.55x worse on long-flow throughput; R2C2 closely
tracks the idealized PFQ for short flows; R2C2's p99 queue occupancy stays
under 27 KB for τ >= 1 µs and blows up (330 KB) only at the 100 ns stress
point.
"""

import numpy as np
import pytest

from repro.analysis import format_series

from conftest import current_scale, emit, sweep_run

STACKS = ("r2c2", "tcp", "pfq")


@pytest.fixture(scope="module")
def sweep(eval_topology, eval_provider):
    """All (stack, tau) packet-simulation runs, memoized."""
    scale = current_scale()
    runs = {}
    for tau in scale.tau_sweep_ns:
        for stack in STACKS:
            runs[(stack, tau)] = sweep_run(
                eval_topology, eval_provider, stack, tau, scale.n_flows
            )
    return runs


def deciles(values):
    return [float(np.percentile(values, p)) for p in range(10, 100, 10)]


def test_fig10_short_flow_fct_cdf(benchmark, sweep):
    scale = current_scale()
    tau = scale.tau_sweep_ns[0]
    series = {}
    for stack in STACKS:
        fcts = sweep[(stack, tau)].short_fcts_us()
        series[stack] = deciles(fcts)
    benchmark.pedantic(lambda: series, rounds=1, iterations=1)
    emit(
        "fig10_fct_short",
        format_series(
            f"Fig 10: short-flow (<100KB) FCT CDF deciles (us), tau={tau}ns",
            "pct",
            list(range(10, 100, 10)),
            series,
        ),
    )
    # TCP worst; R2C2 tracks PFQ.
    assert series["tcp"][-1] > series["r2c2"][-1]
    assert series["r2c2"][-1] < series["pfq"][-1] * 2.0


def test_fig11_long_flow_throughput_cdf(benchmark, sweep):
    scale = current_scale()
    tau = scale.tau_sweep_ns[0]
    series = {}
    for stack in STACKS:
        tputs = sweep[(stack, tau)].long_throughputs_gbps()
        series[stack] = deciles(tputs) if tputs else [0.0] * 9
    benchmark.pedantic(lambda: series, rounds=1, iterations=1)
    emit(
        "fig11_tput_long",
        format_series(
            f"Fig 11: long-flow (>1MB) avg throughput CDF deciles (Gbps), tau={tau}ns",
            "pct",
            list(range(10, 100, 10)),
            series,
        ),
    )
    # Median ordering: multi-path stacks beat single-path TCP.
    assert series["r2c2"][4] > series["tcp"][4]
    assert series["pfq"][4] >= series["r2c2"][4] * 0.7


def test_fig12_fct_vs_load(benchmark, sweep):
    scale = current_scale()
    taus = list(scale.tau_sweep_ns)
    series = {stack: [] for stack in STACKS}
    for tau in taus:
        for stack in STACKS:
            series[stack].append(sweep[(stack, tau)].fct_percentile_us(99))
    normalized = {
        stack: [v / t for v, t in zip(series[stack], series["tcp"])]
        for stack in STACKS
    }
    benchmark.pedantic(lambda: normalized, rounds=1, iterations=1)
    emit(
        "fig12_fct_vs_load",
        format_series(
            "Fig 12: p99 short-flow FCT normalized to TCP vs tau (ns)",
            "tau_ns",
            taus,
            normalized,
        )
        + "\n\npaper at tau=1us: R2C2 ~= 1/3.21 = 0.31 of TCP",
    )
    # R2C2 beats TCP at every load.
    assert all(v < 1.0 for v in normalized["r2c2"])


def test_fig13_throughput_vs_load(benchmark, sweep):
    scale = current_scale()
    taus = list(scale.tau_sweep_ns)
    series = {stack: [] for stack in STACKS}
    for tau in taus:
        for stack in STACKS:
            series[stack].append(sweep[(stack, tau)].mean_long_throughput_gbps())
    normalized = {
        stack: [v / t for v, t in zip(series[stack], series["tcp"])]
        for stack in STACKS
    }
    benchmark.pedantic(lambda: normalized, rounds=1, iterations=1)
    emit(
        "fig13_tput_vs_load",
        format_series(
            "Fig 13: mean long-flow throughput normalized to TCP vs tau (ns)",
            "tau_ns",
            taus,
            normalized,
        )
        + "\n\npaper at tau=1us: R2C2 ~= 2.55x TCP",
    )
    assert all(v > 1.0 for v in normalized["r2c2"])


def test_fig14_queue_occupancy_vs_load(benchmark, sweep):
    scale = current_scale()
    taus = list(scale.tau_sweep_ns)
    p50 = [
        sweep[("r2c2", tau)].queue_occupancy_percentile_kb(50) for tau in taus
    ]
    p99 = [
        sweep[("r2c2", tau)].queue_occupancy_percentile_kb(99) for tau in taus
    ]
    benchmark.pedantic(lambda: (p50, p99), rounds=1, iterations=1)
    reorder = [
        sweep[("r2c2", tau)].reorder_buffer_percentile(95) for tau in taus
    ]
    emit(
        "fig14_queue_occupancy",
        format_series(
            "Fig 14: R2C2 max queue occupancy percentiles (KB) vs tau (ns)",
            "tau_ns",
            taus,
            {"p50_kb": p50, "p99_kb": p99, "reorder_p95_pkts": reorder},
        )
        + "\n\npaper: p99 < 27 KB for tau >= 1us; 330 KB at the 100ns stress"
        "\npoint; reorder buffer p95 ~= 30 packets at tau=1us",
    )
    # Queues shrink as load drops.
    assert p99[-1] <= p99[0]
    # At the lightest load queues are tiny (the low-queuing goal G3).
    assert p99[-1] < 100
