"""Figure 19: control-traffic bytes of the decentralized (broadcast) design
versus a centralized (Fastpass-like) controller, as the number of concurrent
long flows per server grows.

Paper claims: decentralized control traffic is constant in the number of
concurrent flows; centralized traffic grows with it (6.2x more at one flow
per server, 19.9x at ten).  Our byte model reproduces the constant-vs-linear
structure and the ~6x anchor; the slope differs because the paper's exact
rate-message format is unspecified (documented in EXPERIMENTS.md).

The decentralized per-event cost is additionally *measured* from the packet
simulator's broadcast byte counters.
"""

import pytest

from repro.analysis import format_series
from repro.broadcast import ControlTrafficModel
from repro.sim import SimConfig, run_simulation
from repro.workloads import FixedSize, poisson_trace

from conftest import current_scale, emit

FLOWS_PER_SERVER = (1, 2, 4, 6, 8, 10)


def measured_decentralized_bytes_per_event(topology):
    trace = poisson_trace(
        topology, 50, 20_000, sizes=FixedSize(50_000), seed=19
    )
    metrics = run_simulation(topology, trace, SimConfig(stack="r2c2", seed=19))
    events = 2 * len(trace)  # start + finish per flow
    return metrics.broadcast_bytes / events


def test_fig19_centralized_vs_decentralized(benchmark, eval_topology):
    scale = current_scale()
    model = ControlTrafficModel(
        eval_topology.n_nodes, avg_hops=eval_topology.average_distance()
    )

    def build():
        return {
            f: (
                model.decentralized_bytes_per_event(),
                model.centralized_bytes_per_event(f),
            )
            for f in FLOWS_PER_SERVER
        }

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    measured = measured_decentralized_bytes_per_event(eval_topology)

    emit(
        "fig19_control_traffic",
        format_series(
            "Fig 19: control bytes per flow event",
            "flows_per_server",
            list(FLOWS_PER_SERVER),
            {
                "decentralized": [rows[f][0] for f in FLOWS_PER_SERVER],
                "centralized": [rows[f][1] for f in FLOWS_PER_SERVER],
                "ratio": [rows[f][1] / rows[f][0] for f in FLOWS_PER_SERVER],
            },
        )
        + f"\n\nmeasured decentralized bytes/event (packet sim): {measured:.0f}"
        f" (model: {model.decentralized_bytes_per_event():.0f})"
        "\npaper at 512 nodes: ratio 6.2x at 1 flow/server, 19.9x at 10",
    )

    dec = [rows[f][0] for f in FLOWS_PER_SERVER]
    cen = [rows[f][1] for f in FLOWS_PER_SERVER]
    # Decentralized constant; centralized strictly increasing.
    assert len(set(dec)) == 1
    assert cen == sorted(cen) and cen[-1] > cen[0]
    # Centralized is already more expensive at one flow per server.
    assert cen[0] > dec[0]
    # The simulator's measured broadcast cost matches the byte model.
    assert measured == pytest.approx(model.decentralized_bytes_per_event(), rel=0.05)


def test_fig19_paper_scale_anchor(benchmark):
    """The 512-node anchor ratios, independent of REPRO_SCALE."""
    model = ControlTrafficModel(512, avg_hops=6.0)
    ratio_1 = benchmark.pedantic(lambda: model.ratio(1), rounds=1, iterations=1)
    assert ratio_1 == pytest.approx(6.2, abs=0.4)
    assert model.ratio(10) > 3 * ratio_1  # strong growth with concurrency
