"""Figure 18: aggregate throughput of the adaptive (GA) routing selection
normalized against all-RPS, all-VLB and random per-flow assignment, across
load L (fraction of nodes sourcing one long-running flow each).

Paper claims: the adaptive selection "is able to always achieve the best
performance across all load values (the relative performance is always
above one)", with VLB favoured at low load (spare capacity for detours) and
minimal routing at high load.

Also includes the §3.4 heuristic ablation: GA versus hill climbing,
simulated annealing and log-linear learning (the heuristics the paper tried
and discarded).
"""

import pytest

from repro.analysis import format_table
from repro.congestion import FlowSpec
from repro.experiments import ExecutorConfig, current_scale, run_campaign
from repro.experiments.figures import FIGURES, fig18_rows
from repro.selection import (
    AnnealingConfig,
    AnnealingSelector,
    GeneticConfig,
    GeneticSelector,
    HillClimbConfig,
    HillClimbSelector,
    LogLinearConfig,
    LogLinearSelector,
    SelectionProblem,
    uniform_baseline,
)
from repro.workloads import permutation_load_trace

from conftest import emit


def make_problem(topology, provider, load, seed=18):
    trace = permutation_load_trace(topology, load, seed=seed)
    flows = [FlowSpec(a.flow_id, a.src, a.dst, protocol="rps") for a in trace]
    return SelectionProblem(topology, flows, protocols=("rps", "vlb"), provider=provider)


def test_fig18_adaptive_vs_baselines(benchmark):
    """Runs the fig18 campaign (serial, in-process) — the same spec
    ``repro sweep fig18`` executes in parallel."""
    scale = current_scale()

    def sweep():
        campaign = FIGURES["fig18"].build(scale)
        run = run_campaign(campaign, ExecutorConfig(workers=1, strict=True))
        return run.results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = fig18_rows(results, scale)
    loads = list(scale.fig18_loads)
    series = {
        name: [rows[load]["adaptive"] / rows[load][name] for load in loads]
        for name in ("rps", "vlb", "random")
    }
    for stem, text in FIGURES["fig18"].aggregate(results, scale).items():
        emit(stem, text)

    # Adaptive never loses to any baseline.
    for name, values in series.items():
        assert all(v >= 1.0 - 1e-9 for v in values), name
    # Mixing wins strictly somewhere (the point of per-flow protocols).
    assert max(max(v) for v in series.values()) > 1.02
    # Low-load regime: VLB-style spreading beats pure minimal routing.
    low = loads[0]
    assert rows[low]["vlb"] > rows[low]["rps"]


def test_fig18_heuristic_ablation(benchmark, eval_topology, eval_provider):
    """§3.4 ablation: the heuristics the paper evaluated before choosing GA."""
    problem = make_problem(eval_topology, eval_provider, load=0.25, seed=4)

    def run_all():
        return {
            "genetic": GeneticSelector(
                GeneticConfig(max_generations=15, patience=5, seed=4)
            ).search(problem).utility,
            "hill-climb": HillClimbSelector(
                HillClimbConfig(max_steps=400, restarts=2, seed=4)
            ).search(problem).utility,
            "annealing": AnnealingSelector(
                AnnealingConfig(initial_temperature=0.5, cooling=0.9,
                                steps_per_temperature=20, seed=4)
            ).search(problem).utility,
            "log-linear": LogLinearSelector(
                LogLinearConfig(rounds=200, seed=4)
            ).search(problem).utility,
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    best_uniform = max(
        uniform_baseline(problem, "rps").utility,
        uniform_baseline(problem, "vlb").utility,
    )
    rows = {
        name: [value / 1e9, value / best_uniform]
        for name, value in sorted(results.items(), key=lambda kv: -kv[1])
    }
    emit(
        "fig18_heuristic_ablation",
        format_table(
            "Heuristic shoot-out at L=0.25 (Gbps, ratio to best uniform)",
            ["Gbps", "vs_best_uniform"],
            rows,
        ),
    )
    # GA matches or beats every alternative the paper discarded.
    assert results["genetic"] >= max(results.values()) * 0.999
