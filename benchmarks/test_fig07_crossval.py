"""Figure 7: cross-validation of the Maze emulation against the packet
simulator on a 2D torus with 5 Gbps links — flow throughput (7a) and maximum
queue occupancy (7b) distributions must agree.

The paper runs 1,000 x 10 MB flows on a 4x4 torus; the small scale runs the
same topology with proportionally fewer/smaller flows (the Maze emulation is
byte-level and therefore the slowest artifact in this repository).
"""

import numpy as np
import pytest

from repro.analysis import empirical_cdf, format_series, ks_distance
from repro.maze import EmulationConfig, run_emulation
from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.types import gbps
from repro.workloads import FixedSize, poisson_trace

from conftest import current_scale, emit


def run_pair():
    scale = current_scale()
    topo = TorusTopology((4, 4), capacity_bps=gbps(5))
    flow_bytes = 10_000_000 if scale.name == "paper" else 1_000_000
    tau = 1_000_000 if scale.name == "paper" else 150_000
    trace = poisson_trace(
        topo,
        scale.crossval_flows,
        tau,
        sizes=FixedSize(flow_bytes),
        seed=21,
    )
    maze = run_emulation(topo, trace, EmulationConfig(seed=21))
    sim = run_simulation(
        topo, trace, SimConfig(stack="r2c2", mtu_payload=8192, seed=21)
    )
    return maze, sim


def deciles(values):
    return [float(np.percentile(values, p)) for p in range(10, 100, 10)]


def test_fig07_maze_vs_simulator(benchmark):
    maze, sim = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    tput_maze = [f.average_throughput_bps() / 1e9 for f in maze.completed_flows()]
    tput_sim = [f.average_throughput_bps() / 1e9 for f in sim.completed_flows()]
    q_maze = [b / 1000 for b in maze.max_queue_occupancy_bytes]
    q_sim = [b / 1000 for b in sim.max_queue_occupancy_bytes]

    text = format_series(
        "Fig 7a: flow throughput CDF deciles (Gbps)",
        "pct",
        list(range(10, 100, 10)),
        {"maze": deciles(tput_maze), "simulator": deciles(tput_sim)},
    )
    text += "\n\n" + format_series(
        "Fig 7b: max queue occupancy CDF deciles (KB)",
        "pct",
        list(range(10, 100, 10)),
        {"maze": deciles(q_maze), "simulator": deciles(q_sim)},
    )
    ks_tput = ks_distance(tput_maze, tput_sim)
    ks_queue = ks_distance(q_maze, q_sim)
    text += (
        f"\n\nKS(throughput) = {ks_tput:.3f}   KS(queue) = {ks_queue:.3f}"
        f"\nmean throughput: maze {np.mean(tput_maze):.2f} Gbps, "
        f"simulator {np.mean(tput_sim):.2f} Gbps"
    )
    emit("fig07_crossval", text)

    # The cross-validation claim: the two independently built artifacts
    # agree ("our packet-level simulator exhibits high accuracy").
    assert maze.completion_rate() == 1.0
    assert sim.completion_rate() == 1.0
    assert ks_tput < 0.25
    assert np.mean(tput_maze) == pytest.approx(np.mean(tput_sim), rel=0.15)
    assert np.percentile(q_maze, 90) == pytest.approx(
        np.percentile(q_sim, 90), rel=0.6
    )
