"""Figure 17: sensitivity to the bandwidth headroom (0 - 20 %).

* 17a — p99 short-flow FCT against headroom.
* 17b — mean long-flow throughput against headroom.

Paper claims: performance is "not particularly sensitive" to the setting;
5 % is the sweet spot — at τ=1 µs it cuts the p99 short-flow FCT by 21.9 %
versus no headroom, while costing long flows under 3 % of throughput.
"""

import pytest

from repro.analysis import format_series
from repro.sim import SimConfig, run_simulation
from repro.workloads import ParetoSizes, poisson_trace

from conftest import current_scale, emit

HEADROOMS = (0.0, 0.05, 0.10, 0.20)


def test_fig17_headroom_sensitivity(benchmark, eval_topology, eval_provider):
    scale = current_scale()
    trace = poisson_trace(
        eval_topology,
        scale.n_flows,
        scale.tau_default_ns,
        sizes=ParetoSizes(cap_bytes=20_000_000),
        seed=17,
    )

    def sweep():
        rows = {}
        for headroom in HEADROOMS:
            metrics = run_simulation(
                eval_topology,
                trace,
                SimConfig(stack="r2c2", headroom=headroom, seed=17),
                provider=eval_provider,
            )
            rows[headroom] = (
                metrics.fct_percentile_us(99),
                metrics.mean_long_throughput_gbps(),
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "fig17_headroom",
        format_series(
            "Fig 17: p99 short-flow FCT (us) and mean long-flow throughput "
            "(Gbps) vs headroom",
            "headroom",
            [f"{h:.0%}" for h in HEADROOMS],
            {
                "fct_p99_us": [rows[h][0] for h in HEADROOMS],
                "long_tput_gbps": [rows[h][1] for h in HEADROOMS],
            },
        )
        + "\n\npaper: 5% headroom cuts p99 FCT by ~21.9% vs none, costs long"
        "\nflows < 3%; overall not very sensitive to the choice",
    )

    fct_none, tput_none = rows[0.0]
    fct_5, tput_5 = rows[0.05]
    fct_20, tput_20 = rows[0.20]
    # Headroom helps short flows (absorbs bursts) ...
    assert fct_5 <= fct_none * 1.02
    # ... at modest cost to long flows ...
    assert tput_5 >= tput_none * 0.85
    # ... and the overall sensitivity is mild across the sweep.
    assert fct_20 < fct_none * 2.0
    assert tput_20 > tput_none * 0.7
