"""Figure 8: CPU overhead of rate recomputation versus the interval ρ.

The paper replays a 512-node trace (1 µs inter-arrivals) and reports the
99th-percentile of (recomputation wall time / ρ) on a Xeon E5-2665 and an
Atom D510: e.g. at ρ=500 µs the Xeon median is 1.7 % (p99 7.9 %); ρ=100 µs
is borderline (p99 73.9 %) and infeasible on the Atom.

Here the same experiment runs against our numpy water-fill.  Python carries
a large constant factor over the paper's C++, so absolute percentages are
higher; the reproduced claims are the *shape* (overhead falls superlinearly
as ρ grows, because batching both amortizes cost and filters short flows)
and the existence of a feasibility cliff at small ρ.
"""

import time

import numpy as np
import pytest

from repro.analysis import format_series
from repro.congestion import FlowSpec, waterfill
from repro.types import usec
from repro.workloads import ParetoSizes, poisson_trace

from conftest import current_scale, emit

RHO_SWEEP_US = (100, 250, 500, 1000, 2000)


def replay_overheads(topology, provider, rho_ns, trace, finish_ns):
    """Replay flow arrivals/finishes; time a water-fill at each epoch.

    ``finish_ns[i]`` approximates each flow's departure (size at fair rate);
    at every epoch the active set is the flows alive at that instant — the
    batching design only ever sees flows that cross an epoch boundary.
    """
    overheads = []
    horizon = max(finish_ns) if len(finish_ns) else 0
    epoch = rho_ns
    arrivals = sorted(zip((a.start_ns for a in trace), trace))
    while epoch <= horizon:
        active = [
            FlowSpec(a.flow_id, a.src, a.dst, a.protocol)
            for (start, a), end in zip(arrivals, finish_ns)
            if start <= epoch < end
        ]
        started = time.perf_counter_ns()
        if active:
            waterfill(topology, active, provider, headroom=0.05)
        duration = time.perf_counter_ns() - started
        overheads.append(duration / rho_ns)
        epoch += rho_ns
    return overheads


def test_fig08_recompute_cpu_overhead(benchmark, eval_topology, eval_provider):
    scale = current_scale()
    trace = poisson_trace(
        eval_topology,
        scale.n_flows,
        scale.tau_default_ns,
        sizes=ParetoSizes(cap_bytes=20_000_000),
        seed=8,
    )
    # Approximate finish times: size at a nominal fair rate of 1 Gbps.
    finish_ns = [
        a.start_ns + int(a.size_bytes * 8 / 1e9 * 1e9) for a in trace
    ]

    results = {}
    for rho_us in RHO_SWEEP_US:
        overheads = replay_overheads(
            eval_topology, eval_provider, usec(rho_us), trace, finish_ns
        )
        if overheads:
            results[rho_us] = (
                float(np.percentile(overheads, 50)),
                float(np.percentile(overheads, 99)),
            )

    # Benchmark one representative water-fill so pytest-benchmark reports a
    # clean timing number for the core operation.
    active = [
        FlowSpec(a.flow_id, a.src, a.dst, a.protocol) for a in trace[: scale.n_flows // 4]
    ]
    benchmark(lambda: waterfill(eval_topology, active, eval_provider, headroom=0.05))

    rhos = sorted(results)
    text = format_series(
        "Fig 8: recomputation CPU overhead vs interval rho "
        "(fraction of the interval; >1 = infeasible)",
        "rho_us",
        rhos,
        {
            "p50": [results[r][0] for r in rhos],
            "p99": [results[r][1] for r in rhos],
        },
    )
    text += (
        "\n\npaper (Xeon, 512 nodes, tau=1us): rho=500us -> p50 1.7% / p99 7.9%;"
        "\nrho=100us -> p99 73.9%.  Python constant factor applies here;"
        "\nthe reproduced claim is the downward trend in rho."
    )
    emit("fig08_cpu_overhead", text)

    # Shape: overhead decreases as the interval grows.
    p99s = [results[r][1] for r in rhos]
    assert p99s[0] > p99s[-1]
    assert results[rhos[-1]][0] < results[rhos[0]][0] * 1.05
