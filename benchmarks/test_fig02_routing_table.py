"""Figure 2 (table): saturation throughput of four routing algorithms on an
8-ary 2-cube across six traffic patterns.

Paper values (fractions of capacity):

    pattern           RPS   DTR   VLB   WLB
    nearest neighbor  4.00  4.00  0.50  2.33
    uniform           1.00  1.00  0.50  0.76
    bit complement    0.40  0.50  0.50  0.42
    transpose         0.54  0.25  0.50  0.57
    tornado           0.33  0.33  0.50  0.53
    worst-case        0.21  0.25  0.50  0.31

This one is exact analysis (channel loads + worst-case matchings), so it is
independent of REPRO_SCALE and should match the paper closely.
"""

import pytest

from repro.analysis import format_table, throughput_table
from repro.routing import (
    DestinationTagRouting,
    RandomPacketSpraying,
    ValiantLoadBalancing,
    WeightedLoadBalancing,
)
from repro.topology import TorusTopology
from repro.workloads import STANDARD_PATTERNS

from conftest import emit

PAPER = {
    "nearest-neighbor": {"rps": 4.0, "dor": 4.0, "vlb": 0.5, "wlb": 2.33},
    "uniform": {"rps": 1.0, "dor": 1.0, "vlb": 0.5, "wlb": 0.76},
    "bit-complement": {"rps": 0.4, "dor": 0.5, "vlb": 0.5, "wlb": 0.42},
    "transpose": {"rps": 0.54, "dor": 0.25, "vlb": 0.5, "wlb": 0.57},
    "tornado": {"rps": 0.33, "dor": 0.33, "vlb": 0.5, "wlb": 0.53},
    "worst-case": {"rps": 0.21, "dor": 0.25, "vlb": 0.5, "wlb": 0.31},
}

PATTERN_ORDER = (
    "nearest-neighbor",
    "uniform",
    "bit-complement",
    "transpose",
    "tornado",
    "worst-case",
)


def build_table():
    topo = TorusTopology((8, 8))
    protocols = [
        RandomPacketSpraying(topo),
        DestinationTagRouting(topo),
        ValiantLoadBalancing(topo),
        WeightedLoadBalancing(topo),
    ]
    patterns = [STANDARD_PATTERNS[p] for p in PATTERN_ORDER if p != "worst-case"]
    return throughput_table(protocols, patterns, include_worst_case=True)


def test_fig02_routing_throughput_table(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)

    rows = {}
    for pattern in PATTERN_ORDER:
        measured = table[pattern]
        rows[pattern] = [
            measured["rps"], measured["dor"], measured["vlb"], measured["wlb"],
            "| paper:",
            PAPER[pattern]["rps"], PAPER[pattern]["dor"],
            PAPER[pattern]["vlb"], PAPER[pattern]["wlb"],
        ]
    emit(
        "fig02_routing_table",
        format_table(
            "Throughput as fraction of capacity, 8-ary 2-cube (measured | paper)",
            ["rps", "dor", "vlb", "wlb", "", "rps", "dor", "vlb", "wlb"],
            rows,
        ),
    )

    # Shape assertions: the paper's qualitative structure.
    assert table["nearest-neighbor"]["rps"] == pytest.approx(4.0, abs=0.05)
    assert table["uniform"]["rps"] == pytest.approx(1.0, abs=0.08)
    assert table["tornado"]["rps"] == pytest.approx(1 / 3, abs=0.02)
    assert table["tornado"]["wlb"] == pytest.approx(0.53, abs=0.03)
    # VLB is flat at 0.5 everywhere.
    for pattern in PATTERN_ORDER:
        assert table[pattern]["vlb"] == pytest.approx(0.5, abs=0.06)
    # No single algorithm wins everywhere: minimal routing dominates on
    # local traffic, VLB dominates the worst case.
    assert table["nearest-neighbor"]["rps"] > table["nearest-neighbor"]["vlb"]
    assert table["worst-case"]["vlb"] > table["worst-case"]["rps"]
    assert table["worst-case"]["vlb"] > table["worst-case"]["dor"]
    # WLB interpolates: beats VLB on local patterns, beats minimal in the
    # worst case.
    assert table["nearest-neighbor"]["wlb"] > table["nearest-neighbor"]["vlb"]
    assert table["worst-case"]["wlb"] > table["worst-case"]["rps"]
