"""Figure 2 (table): saturation throughput of four routing algorithms on an
8-ary 2-cube across six traffic patterns.

Paper values (fractions of capacity):

    pattern           RPS   DTR   VLB   WLB
    nearest neighbor  4.00  4.00  0.50  2.33
    uniform           1.00  1.00  0.50  0.76
    bit complement    0.40  0.50  0.50  0.42
    transpose         0.54  0.25  0.50  0.57
    tornado           0.33  0.33  0.50  0.53
    worst-case        0.21  0.25  0.50  0.31

This one is exact analysis (channel loads + worst-case matchings), so it is
independent of REPRO_SCALE and should match the paper closely.

Runs as a ``repro.experiments`` campaign (serial, in-process, uncached) —
the same spec ``repro sweep fig02`` executes in parallel; the campaign
runner guarantees identical results either way.
"""

import pytest

from repro.experiments import ExecutorConfig, current_scale, run_campaign
from repro.experiments.figures import FIG02_PAPER as PAPER
from repro.experiments.figures import FIGURES, fig02_table

from conftest import emit

PATTERN_ORDER = (
    "nearest-neighbor",
    "uniform",
    "bit-complement",
    "transpose",
    "tornado",
    "worst-case",
)


def run_fig02_campaign():
    campaign = FIGURES["fig02"].build(current_scale())
    return run_campaign(campaign, ExecutorConfig(workers=1, strict=True)).results


def test_fig02_routing_throughput_table(benchmark):
    results = benchmark.pedantic(run_fig02_campaign, rounds=1, iterations=1)
    table = fig02_table(results)

    scale = current_scale()
    for stem, text in FIGURES["fig02"].aggregate(results, scale).items():
        emit(stem, text)

    # Shape assertions: the paper's qualitative structure.
    assert table["nearest-neighbor"]["rps"] == pytest.approx(4.0, abs=0.05)
    assert table["uniform"]["rps"] == pytest.approx(1.0, abs=0.08)
    assert table["tornado"]["rps"] == pytest.approx(1 / 3, abs=0.02)
    assert table["tornado"]["wlb"] == pytest.approx(0.53, abs=0.03)
    # VLB is flat at 0.5 everywhere.
    for pattern in PATTERN_ORDER:
        assert table[pattern]["vlb"] == pytest.approx(0.5, abs=0.06)
    # No single algorithm wins everywhere: minimal routing dominates on
    # local traffic, VLB dominates the worst case.
    assert table["nearest-neighbor"]["rps"] > table["nearest-neighbor"]["vlb"]
    assert table["worst-case"]["vlb"] > table["worst-case"]["rps"]
    assert table["worst-case"]["vlb"] > table["worst-case"]["dor"]
    # WLB interpolates: beats VLB on local patterns, beats minimal in the
    # worst case.
    assert table["nearest-neighbor"]["wlb"] > table["nearest-neighbor"]["vlb"]
    assert table["worst-case"]["wlb"] > table["worst-case"]["rps"]
