"""Ablation: shared (collapsed) vs per-node control plane in the simulator.

The shared mode computes the provably identical per-node allocations once;
the per-node mode runs one controller per node, fed only by actual
broadcast deliveries, so visibility skew (microseconds of broadcast
propagation vs 500 µs epochs) is modelled exactly.  This bench quantifies
both the fidelity gap (≈0) and the cost of full fidelity (kept small by the
shared allocation memo).
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.sim import SimConfig, run_simulation
from repro.workloads import ParetoSizes, poisson_trace

from conftest import current_scale, emit


def test_ablation_control_plane_fidelity(benchmark, eval_topology, eval_provider):
    scale = current_scale()
    trace = poisson_trace(
        eval_topology,
        scale.n_flows // 2,
        scale.tau_default_ns,
        sizes=ParetoSizes(cap_bytes=20_000_000),
        seed=31,
    )

    def sweep():
        out = {}
        for mode in ("shared", "per_node"):
            out[mode] = run_simulation(
                eval_topology,
                trace,
                SimConfig(stack="r2c2", control_plane=mode, seed=31),
                provider=eval_provider,
            )
        return out

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = {}
    for mode, metrics in runs.items():
        rows[mode] = [
            metrics.fct_percentile_us(50),
            metrics.fct_percentile_us(99),
            metrics.queue_occupancy_percentile_kb(99),
            metrics.wallclock_s,
        ]
    fs = np.sort([f.fct_ns() for f in runs["shared"].completed_flows()])
    fp = np.sort([f.fct_ns() for f in runs["per_node"].completed_flows()])
    median_gap = float(np.median(np.abs(fs - fp) / fs))

    emit(
        "ablation_control_plane",
        format_table(
            "Shared vs per-node control plane",
            ["fct_p50_us", "fct_p99_us", "queue_p99_kb", "wall_s"],
            rows,
        )
        + f"\n\nmedian per-flow FCT gap: {median_gap:.1%} — the visibility"
        "\nskew the shared mode ignores is negligible against 500us epochs,"
        "\nwhich is what justifies collapsing the controllers",
    )
    assert runs["shared"].completion_rate() == 1.0
    assert runs["per_node"].completion_rate() == 1.0
    assert median_gap < 0.05
