#!/usr/bin/env python
"""Adaptive per-flow routing selection (paper §3.4 and Figure 18).

Part 1 reproduces the Figure 2 insight analytically: no single routing
protocol wins on every traffic pattern.  Part 2 runs the genetic-algorithm
selection on long-flow workloads at several loads and shows that mixing
protocols per flow beats any uniform choice.

Run:  python examples/adaptive_routing.py
"""

from repro.analysis import format_series, format_table, throughput_table
from repro.congestion import FlowSpec
from repro.routing import (
    DestinationTagRouting,
    RandomPacketSpraying,
    ValiantLoadBalancing,
    WeightedLoadBalancing,
)
from repro.selection import (
    GeneticConfig,
    GeneticSelector,
    SelectionProblem,
    uniform_baseline,
)
from repro.topology import TorusTopology
from repro.workloads import STANDARD_PATTERNS, permutation_load_trace


def part1_no_single_winner() -> None:
    topo = TorusTopology((8, 8))
    protocols = [
        RandomPacketSpraying(topo),
        DestinationTagRouting(topo),
        ValiantLoadBalancing(topo),
        WeightedLoadBalancing(topo),
    ]
    patterns = [
        STANDARD_PATTERNS[name]
        for name in ("nearest-neighbor", "uniform", "transpose", "tornado")
    ]
    table = throughput_table(protocols, patterns, include_worst_case=True)
    rows = {
        pattern: [values[p.name] for p in protocols]
        for pattern, values in table.items()
    }
    print(
        format_table(
            "No one-size-fits-all: throughput fraction on an 8-ary 2-cube",
            [p.name for p in protocols],
            rows,
        )
    )
    winners = {
        pattern: max(values, key=values.get) for pattern, values in table.items()
    }
    print(f"\nwinners per pattern: {winners}\n")


def part2_genetic_selection() -> None:
    topo = TorusTopology((4, 4, 4))
    ga = GeneticSelector(GeneticConfig(max_generations=20, patience=6, seed=7))
    loads = (0.125, 0.25, 0.5, 1.0)
    series = {"adaptive": [], "all-rps": [], "all-vlb": []}
    for load in loads:
        trace = permutation_load_trace(topo, load, seed=7)
        flows = [FlowSpec(a.flow_id, a.src, a.dst, protocol="rps") for a in trace]
        problem = SelectionProblem(topo, flows, protocols=("rps", "vlb"))
        series["adaptive"].append(ga.search(problem).utility / 1e9)
        series["all-rps"].append(uniform_baseline(problem, "rps").utility / 1e9)
        series["all-vlb"].append(uniform_baseline(problem, "vlb").utility / 1e9)
    print(
        format_series(
            "Aggregate throughput (Gbps) vs load: adaptive never loses",
            "load",
            list(loads),
            series,
        )
    )
    gain_low = series["adaptive"][0] / max(series["all-rps"][0], series["all-vlb"][0])
    print(f"\nat L={loads[0]} the adaptive mix yields {gain_low:.2f}x the best "
          f"uniform assignment")


if __name__ == "__main__":
    part1_no_single_winner()
    part2_genetic_selection()
