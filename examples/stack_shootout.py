#!/usr/bin/env python
"""Packet-level shoot-out: R2C2 vs TCP vs idealized per-flow queues.

Reruns the core of the paper's §5.2 on a scaled rack: a bursty, heavy-tailed
datacenter workload (Poisson arrivals, Pareto(1.05) sizes) over a 3D torus,
once per transport stack.  Prints the Figure 10-14 style headline metrics:
short-flow tail FCT, long-flow throughput, queue occupancy and the broadcast
overhead R2C2 pays for its global visibility.

Run:  python examples/stack_shootout.py
"""

from repro.analysis import format_table
from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.workloads import ParetoSizes, poisson_trace


def main() -> None:
    topology = TorusTopology((4, 4, 4))
    trace = poisson_trace(
        topology,
        n_flows=500,
        mean_interarrival_ns=2_000,  # bursty: a new flow every 2 us
        sizes=ParetoSizes(mean_bytes=100 * 1024, shape=1.05, cap_bytes=20_000_000),
        seed=42,
    )
    total_mb = sum(a.size_bytes for a in trace) / 1e6
    print(f"workload: {len(trace)} flows, {total_mb:.0f} MB total, "
          f"{sum(1 for a in trace if a.size_bytes < 100 * 1024)} short flows")

    rows = {}
    for stack in ("r2c2", "tcp", "pfq"):
        metrics = run_simulation(topology, trace, SimConfig(stack=stack, seed=42))
        rows[stack] = [
            metrics.fct_percentile_us(50),
            metrics.fct_percentile_us(99),
            metrics.mean_long_throughput_gbps(),
            metrics.queue_occupancy_percentile_kb(99),
            metrics.drops,
            100 * metrics.broadcast_capacity_fraction(),
        ]
        print(f"  {stack}: simulated {metrics.duration_ns / 1e6:.1f} ms in "
              f"{metrics.wallclock_s:.1f} s wall "
              f"({metrics.events_processed} events)")

    print()
    print(
        format_table(
            "Transport comparison (3D torus, Pareto workload)",
            [
                "fct_p50_us",
                "fct_p99_us",
                "long_tput_gbps",
                "queue_p99_kb",
                "drops",
                "bcast_%",
            ],
            rows,
        )
    )
    tcp_vs_r2c2 = rows["tcp"][1] / rows["r2c2"][1]
    print(f"\nTCP's p99 short-flow FCT is {tcp_vs_r2c2:.2f}x R2C2's "
          f"(paper reports 3.21x at 512 nodes)")


if __name__ == "__main__":
    main()
