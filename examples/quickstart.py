#!/usr/bin/env python
"""Quickstart: R2C2 on a 64-node rack in a dozen lines.

Builds a 4x4x4 3D-torus rack (the SeaMicro/Moonshot shape, scaled down),
starts a few flows with different weights and routing protocols, and shows
the congestion-controlled rates every sender enforces — no probing, no
switch support, just broadcast flow events plus local computation.

Run:  python examples/quickstart.py
"""

from repro.core import R2C2Config, Rack
from repro.topology import TorusTopology
from repro.types import usec


def main() -> None:
    topology = TorusTopology((4, 4, 4))  # 64 nodes, 10 Gbps links
    rack = Rack(topology, R2C2Config(headroom=0.05, recompute_interval_ns=usec(500)))

    print(f"rack: {topology.name}, {topology.n_nodes} nodes, "
          f"{topology.n_links} links, diameter {topology.diameter()}")

    # Start three flows.  Announcements are 16-byte broadcasts; every node
    # now knows the rack's whole traffic matrix.
    bulk = rack.start_flow(src=0, dst=42, protocol="rps")
    heavy = rack.start_flow(src=1, dst=42, protocol="rps", weight=2.0)
    detour = rack.start_flow(src=2, dst=42, protocol="vlb")
    print(f"\nstarted flows {bulk}, {heavy} (weight 2.0), {detour} (VLB)")
    print(f"every node sees the same table: {rack.tables_consistent()}")

    # Advance past one recomputation epoch: each sender water-fills the
    # global traffic matrix locally and rate-limits its own flows.
    rack.advance_time(usec(500))
    print("\nenforced rates after the first 500 us epoch:")
    specs = {spec.flow_id: spec for spec in rack.active_flows()}
    for flow_id, rate in sorted(rack.rates().items()):
        spec = specs[flow_id]
        print(f"  flow {flow_id} ({spec.src}->{spec.dst}, {spec.protocol}, "
              f"weight {spec.weight}): {rate / 1e9:.2f} Gbps")

    # A host-limited flow announces its demand; the freed capacity goes to
    # the others at the next epoch.
    rack.update_demand(bulk, demand_bps=1e9)
    rack.advance_time(usec(500))
    print("\nafter flow 0 announces a 1 Gbps demand:")
    for flow_id, rate in sorted(rack.rates().items()):
        print(f"  flow {flow_id}: {rate / 1e9:.2f} Gbps")

    # Let the routing-selection process (a genetic algorithm maximizing
    # aggregate throughput) reassign protocols per flow.
    improvement = rack.select_routes()
    rack.advance_time(usec(500))
    print(f"\nrouting selection improved aggregate throughput by "
          f"{improvement:.1%}; control traffic so far: "
          f"{rack.control_bytes_on_wire} bytes on the wire")

    rack.finish_flow(heavy)
    rack.advance_time(usec(500))
    print(f"\nflow {heavy} finished; remaining rates:")
    for flow_id, rate in sorted(rack.rates().items()):
        print(f"  flow {flow_id}: {rate / 1e9:.2f} Gbps")


if __name__ == "__main__":
    main()
