#!/usr/bin/env python
"""Cross-validating the two execution substrates (paper §5.1, Figure 7).

Runs the identical workload on (a) the byte-level Maze emulation platform —
ring buffers, pointer rings, real encoded packets, checksums verified at the
receiver — and (b) the event-driven packet simulator, then compares the
per-flow throughput distributions and queue occupancies.

Run:  python examples/emulation_crossval.py
"""

import numpy as np

from repro.analysis import format_series, ks_distance
from repro.maze import EmulationConfig, run_emulation
from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.types import gbps
from repro.workloads import FixedSize, poisson_trace


def main() -> None:
    # The Figure 7 setup, scaled: 4x4 2D torus, 5 Gbps virtual links.
    topology = TorusTopology((4, 4), capacity_bps=gbps(5))
    trace = poisson_trace(
        topology,
        n_flows=40,
        mean_interarrival_ns=150_000,
        sizes=FixedSize(1_000_000),
        seed=77,
    )
    print(f"workload: {len(trace)} x 1 MB flows on {topology.name} @ 5 Gbps")

    maze = run_emulation(topology, trace, EmulationConfig(seed=77))
    print(f"maze emulation: {maze.duration_ns / 1e6:.1f} ms simulated, "
          f"{maze.wallclock_s:.1f} s wall, "
          f"{maze.broadcast_packets} broadcast deliveries")

    sim = run_simulation(
        topology, trace, SimConfig(stack="r2c2", mtu_payload=8192, seed=77)
    )
    print(f"packet simulator: {sim.duration_ns / 1e6:.1f} ms simulated, "
          f"{sim.wallclock_s:.1f} s wall")

    tput_maze = [f.average_throughput_bps() / 1e9 for f in maze.completed_flows()]
    tput_sim = [f.average_throughput_bps() / 1e9 for f in sim.completed_flows()]
    pcts = list(range(10, 100, 10))
    print()
    print(
        format_series(
            "Flow throughput CDF deciles (Gbps)",
            "pct",
            pcts,
            {
                "maze": [float(np.percentile(tput_maze, p)) for p in pcts],
                "simulator": [float(np.percentile(tput_sim, p)) for p in pcts],
            },
        )
    )
    print(f"\nKS distance: {ks_distance(tput_maze, tput_sim):.3f} "
          f"(0 = identical distributions)")
    print(f"mean throughput: maze {np.mean(tput_maze):.2f} Gbps, "
          f"simulator {np.mean(tput_sim):.2f} Gbps")
    print("\nagreement between two independently built artifacts is the "
          "paper's confidence argument for its large-scale simulations")


if __name__ == "__main__":
    main()
