#!/usr/bin/env python
"""Multi-tenant network sharing: allocation flexibility beyond per-flow
fairness (paper §3.3.2, goal G4).

Scenario: tenants Alpha and Beta share a rack 50/50.  Beta is "chatty" — it
opens eight flows to Alpha's two, all crossing the same bottleneck region.
Per-flow fairness would hand Beta 80 % of the bandwidth; R2C2's weight
primitive restores the tenant split.  A latency-critical service then gets
strict priority via the priority primitive (the deadline-policy mapping).

Run:  python examples/multi_tenant_isolation.py
"""

from collections import defaultdict

from repro.congestion import DeadlinePriority, TenantShares
from repro.core import R2C2Config, Rack
from repro.topology import TorusTopology
from repro.types import usec


def tenant_report(rack, tenant_of):
    per_tenant = defaultdict(float)
    for flow_id, rate in rack.rates().items():
        per_tenant[tenant_of[flow_id]] += rate
    return {t: r / 1e9 for t, r in sorted(per_tenant.items())}


def main() -> None:
    topology = TorusTopology((4, 4))
    tenant_of = {}

    # ------------------------------------------------------------------
    # Round 1: naive per-flow fairness.
    # ------------------------------------------------------------------
    rack = Rack(topology)
    for _ in range(2):
        fid = rack.start_flow(0, 5, tenant="alpha")
        tenant_of[fid] = "alpha"
    for i in range(8):
        fid = rack.start_flow(0, 5, tenant="beta")
        tenant_of[fid] = "beta"
    rack.advance_time(usec(500))
    print("per-flow fairness (the chatty tenant wins):")
    for tenant, gbps in tenant_report(rack, tenant_of).items():
        print(f"  {tenant}: {gbps:.2f} Gbps aggregate")

    # ------------------------------------------------------------------
    # Round 2: tenant shares mapped onto flow weights.
    # ------------------------------------------------------------------
    policy = TenantShares({"alpha": 1.0, "beta": 1.0})
    rack2 = Rack(topology)
    tenant_of2 = {}
    specs = []
    for _ in range(2):
        specs.append(("alpha", 0, 5))
    for _ in range(8):
        specs.append(("beta", 0, 5))
    counts = defaultdict(int)
    for tenant, _, _ in specs:
        counts[tenant] += 1
    for tenant, src, dst in specs:
        weight = policy.share_of(tenant) / counts[tenant]
        fid = rack2.start_flow(src, dst, weight=weight, tenant=tenant)
        tenant_of2[fid] = tenant
    rack2.advance_time(usec(500))
    print("\ntenant-share weights (50/50 restored, per paper [10,11,30]):")
    for tenant, gbps in tenant_report(rack2, tenant_of2).items():
        print(f"  {tenant}: {gbps:.2f} Gbps aggregate")

    # ------------------------------------------------------------------
    # Round 3: a deadline flow preempts best-effort traffic via priority.
    # ------------------------------------------------------------------
    deadline_policy = DeadlinePriority()
    rack3 = Rack(topology)
    best_effort = rack3.start_flow(0, 5, priority=deadline_policy.BEST_EFFORT_LEVEL)
    urgent = rack3.start_flow(
        1, 5, priority=deadline_policy.DEADLINE_LEVEL, weight=4.0
    )
    rack3.advance_time(usec(500))
    print("\ndeadline traffic at strict priority (pFabric-style mapping):")
    print(f"  urgent flow:      {rack3.rate_of(urgent) / 1e9:.2f} Gbps")
    print(f"  best-effort flow: {rack3.rate_of(best_effort) / 1e9:.2f} Gbps")
    print("\n(the best-effort flow receives only the capacity the deadline "
          "level leaves behind)")


if __name__ == "__main__":
    main()
