#!/usr/bin/env python
"""Failure handling in the broadcast control plane (paper §3.2).

Demonstrates the full failure story: a link dies, topology discovery tells
every node, all nodes re-announce their ongoing flows, tables re-converge,
and rate computation adapts to the degraded fabric.  Also shows the
broadcast-reliability machinery (drop notification and retransmission) and
the paper's failure-rate arithmetic.

Run:  python examples/failure_recovery.py
"""

from repro.broadcast import (
    BroadcastForwarderReliability,
    BroadcastSenderReliability,
    FailureRecovery,
)
from repro.core import Rack
from repro.topology import TorusTopology
from repro.types import usec


def main() -> None:
    topology = TorusTopology((4, 4))
    rack = Rack(topology)

    flows = [rack.start_flow(0, 10), rack.start_flow(1, 10), rack.start_flow(5, 10)]
    rack.advance_time(usec(500))
    print("rates before the failure:")
    for fid in flows:
        print(f"  flow {fid}: {rack.rate_of(fid) / 1e9:.2f} Gbps")

    # --- a cable dies ---------------------------------------------------
    reannounced = rack.inject_link_failure(1, 2)
    print(f"\nlink 1->2 failed: {reannounced} flows re-announced rack-wide; "
          f"tables consistent: {rack.tables_consistent()}")

    # Rebuild the control plane against the degraded fabric and compare.
    degraded = topology.without_links([(1, 2), (2, 1)])
    rack2 = Rack(degraded)
    flows2 = [rack2.start_flow(0, 10), rack2.start_flow(1, 10), rack2.start_flow(5, 10)]
    rack2.advance_time(usec(500))
    print("\nrates on the degraded fabric (routing around the dead cable):")
    for fid in flows2:
        print(f"  flow {fid}: {rack2.rate_of(fid) / 1e9:.2f} Gbps")

    # --- broadcast drop recovery ----------------------------------------
    print("\nbroadcast drop/retransmit machinery:")
    sender = BroadcastSenderReliability(max_retransmits=3)
    forwarder = BroadcastForwarderReliability(node=7)
    seq = sender.register(b"\x21" + b"\x00" * 15, tree_id=1)
    note = forwarder.on_queue_overflow(source=0, seq=seq)
    print(f"  node {note.dropped_at} dropped broadcast seq {note.seq}; "
          f"notifying source {note.source}")
    entry = sender.on_drop_notification(note.seq)
    print(f"  source retransmits on tree {entry.tree_id} "
          f"(attempt {entry.retransmits})")

    # --- expected failure rate ------------------------------------------
    recovery = FailureRecovery()
    per_day = recovery.expected_failures_per_day(512, cpus_per_node=4)
    print(f"\npaper's estimate for a 512-node rack: {per_day:.2f} failures/day"
          " -> re-announcing all flows on failure is cheap")


if __name__ == "__main__":
    main()
