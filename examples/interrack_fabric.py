#!/usr/bin/env python
"""Inter-rack networking (paper §6): two racks, two designs.

Design A — direct gateway cables between racks (the paper's preferred,
Theia-like option): one R2C2 domain spans both racks, hierarchical routing
load-balances the parallel cables, and the water-fill naturally confines
inter-rack flows to the gateway capacity while intra-rack traffic keeps its
full fabric.

Design B — an aggregation switch with R2C2-in-Ethernet tunneling: the same
flows pay encapsulation overhead and funnel through the switch.

Run:  python examples/interrack_fabric.py
"""

import random

from repro.congestion import FlowSpec, WeightProvider, waterfill
from repro.interrack import (
    HierarchicalRouting,
    ring_of_racks,
    switched_multirack,
    tunnel_overhead_fraction,
    tunnel_packet,
    untunnel_packet,
)
from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.types import gbps
from repro.wire import DataPacket
from repro.workloads import FixedSize, poisson_trace


def design_a_direct_cables() -> None:
    racks = [TorusTopology((4, 4)) for _ in range(2)]
    fabric = ring_of_racks(racks, cables_per_side=2, bridge_capacity_bps=gbps(40))
    print(f"Design A: {fabric.name}, {fabric.n_nodes} nodes, "
          f"{len(fabric.bridge_links()) // 2} cables @ 40 Gbps, "
          f"oversubscription {fabric.oversubscription_ratio():.1f}x")

    hier = HierarchicalRouting(fabric)
    rng = random.Random(1)
    path = hier.sample_path(fabric.global_id(0, 5), fabric.global_id(1, 9), rng)
    pretty = " -> ".join(
        f"r{fabric.rack_of(n)}n{fabric.local_id(n)}" for n in path
    )
    print(f"  sample inter-rack route: {pretty}")

    provider = WeightProvider(fabric, {"hier": hier})
    flows = [
        FlowSpec(i, fabric.global_id(0, i), fabric.global_id(1, i), "hier")
        for i in range(6)
    ] + [FlowSpec(100, fabric.global_id(0, 1), fabric.global_id(0, 14), "hier")]
    alloc = waterfill(fabric, flows, provider)
    inter = [alloc.rates_bps[i] / 1e9 for i in range(6)]
    print(f"  6 inter-rack flows: {inter[0]:.1f} Gbps each "
          f"(sum {sum(inter):.0f} <= 80 Gbps of cables)")
    print(f"  1 intra-rack flow:  {alloc.rates_bps[100] / 1e9:.1f} Gbps "
          "(full fabric, unaffected by the gateways)")


def design_b_switched_tunnel() -> None:
    racks = [TorusTopology((4, 4)) for _ in range(2)]
    topo, switch = switched_multirack(
        racks, uplinks_per_rack=2, switch_capacity_bps=gbps(40)
    )
    print(f"\nDesign B: {topo.name}, aggregation switch is node {switch}")

    packet = DataPacket(
        flow_id=7, src=5, dst=25, seq=0, route_ports=(1, 2), route_index=0,
        payload=b"x" * 1024,
    ).encode()
    frame = tunnel_packet(packet, src=(0, 5), dst=(1, 9))
    recovered = untunnel_packet(frame)
    assert recovered == packet
    print(f"  tunneled a {len(packet)}-byte R2C2 packet in a "
          f"{len(frame)}-byte Ethernet frame "
          f"({100 * tunnel_overhead_fraction(len(packet)):.1f}% overhead)")

    trace = poisson_trace(topo, 60, 20_000, sizes=FixedSize(60_000), seed=4)
    metrics = run_simulation(topo, trace, SimConfig(stack="r2c2", seed=4))
    print(f"  simulated {len(trace)} flows across the switch: "
          f"completion {metrics.completion_rate():.0%}, "
          f"p99 FCT {metrics.fct_percentile_us(99):.1f} us")
    print("  (every cross-rack byte squeezes through the switch uplinks — "
          "the cost the paper's switchless design avoids)")


if __name__ == "__main__":
    design_a_direct_cables()
    design_b_switched_tunnel()
