"""Tests for the inter-rack extension (§6)."""

import random

import pytest

from repro.congestion import FlowSpec, WeightProvider, waterfill
from repro.errors import RoutingError, TopologyError, WireFormatError
from repro.interrack import (
    ETHERNET_OVERHEAD_BYTES,
    EthernetFrame,
    HierarchicalRouting,
    MultiRackFabric,
    mac_for,
    ring_of_racks,
    switched_multirack,
    tunnel_overhead_fraction,
    tunnel_packet,
    untunnel_packet,
)
from repro.topology import TorusTopology
from repro.types import gbps
from repro.wire import DataPacket


@pytest.fixture
def two_racks():
    racks = [TorusTopology((4, 4)) for _ in range(2)]
    return ring_of_racks(racks, cables_per_side=2, bridge_capacity_bps=gbps(40))


class TestMultiRackFabric:
    def test_id_arithmetic(self, two_racks):
        assert two_racks.n_racks == 2
        assert two_racks.rack_size == 16
        assert two_racks.rack_of(0) == 0
        assert two_racks.rack_of(17) == 1
        assert two_racks.local_id(17) == 1
        assert two_racks.global_id(1, 1) == 17

    def test_bridge_links_have_their_own_capacity(self, two_racks):
        bridges = two_racks.bridge_links()
        assert len(bridges) == 4  # 2 cables x 2 directions
        assert all(link.capacity_bps == gbps(40) for link in bridges)
        # Fabric links keep the rack capacity.
        intra = two_racks.link(0, 1)
        assert intra.capacity_bps == gbps(10)

    def test_gateways_of(self, two_racks):
        gw0 = two_racks.gateways_of(0)
        assert gw0 and all(two_racks.rack_of(g) == 0 for g in gw0)

    def test_is_bridge_link(self, two_racks):
        bridge = two_racks.bridge_links()[0]
        assert two_racks.is_bridge_link(bridge.link_id)
        assert not two_racks.is_bridge_link(two_racks.link_id(0, 1))

    def test_oversubscription(self, two_racks):
        # 16 nodes x 10G rack capacity vs 2 x 40G cables.
        assert two_racks.oversubscription_ratio() == pytest.approx(2.0)

    def test_connected_across_racks(self, two_racks):
        assert two_racks.is_connected()
        assert two_racks.distance(0, two_racks.global_id(1, 0)) >= 1

    def test_validation(self):
        rack = TorusTopology((4, 4))
        with pytest.raises(TopologyError):
            MultiRackFabric([rack], [(0, 0, 0, 1)])
        with pytest.raises(TopologyError):
            MultiRackFabric([rack, TorusTopology((4, 4))], [])
        with pytest.raises(TopologyError):
            MultiRackFabric(
                [rack, TorusTopology((2, 2))], [(0, 0, 1, 0)]
            )
        with pytest.raises(TopologyError):
            MultiRackFabric([rack, TorusTopology((4, 4))], [(0, 0, 0, 1)])

    def test_three_rack_ring(self):
        racks = [TorusTopology((3, 3)) for _ in range(3)]
        fabric = ring_of_racks(racks, cables_per_side=1)
        assert fabric.n_racks == 3
        # Ring: every rack reaches every other.
        assert fabric.is_connected()


class TestHierarchicalRouting:
    def test_requires_fabric(self, torus2d):
        with pytest.raises(RoutingError):
            HierarchicalRouting(torus2d)

    def test_intra_rack_paths_minimal(self, two_racks, rng):
        hier = HierarchicalRouting(two_racks)
        path = hier.sample_path(0, 5, rng)
        assert len(path) - 1 == two_racks.distance(0, 5)

    def test_inter_rack_paths_cross_exactly_one_bridge(self, two_racks, rng):
        hier = HierarchicalRouting(two_racks)
        src, dst = 0, two_racks.global_id(1, 9)
        for _ in range(20):
            path = hier.sample_path(src, dst, rng)
            assert path[0] == src and path[-1] == dst
            crossings = sum(
                1
                for i in range(len(path) - 1)
                if two_racks.rack_of(path[i]) != two_racks.rack_of(path[i + 1])
            )
            assert crossings == 1

    def test_cables_load_balanced(self, two_racks, rng):
        hier = HierarchicalRouting(two_racks)
        src, dst = 0, two_racks.global_id(1, 9)
        used = set()
        for _ in range(60):
            path = hier.sample_path(src, dst, rng)
            for i in range(len(path) - 1):
                link = two_racks.link_id(path[i], path[i + 1])
                if two_racks.is_bridge_link(link):
                    used.add(link)
        assert len(used) == 2  # both parallel cables see traffic

    def test_weights_unit_bridge_mass(self, two_racks):
        hier = HierarchicalRouting(two_racks)
        weights = hier.link_weights(0, two_racks.global_id(1, 9))
        bridge_mass = sum(
            w for link, w in weights.items() if two_racks.is_bridge_link(link)
        )
        assert bridge_mass == pytest.approx(1.0)

    def test_multi_hop_rack_route(self):
        # Three racks in a line (ring with 3 racks): 0 -> 2 goes via 1 or
        # directly, depending on cabling; the route must still arrive.
        racks = [TorusTopology((3, 3)) for _ in range(3)]
        fabric = ring_of_racks(racks, cables_per_side=1)
        hier = HierarchicalRouting(fabric)
        rng = random.Random(0)
        src, dst = 0, fabric.global_id(2, 4)
        path = hier.sample_path(src, dst, rng)
        assert path[-1] == dst
        weights = hier.link_weights(src, dst)
        assert sum(weights.values()) > 0

    def test_waterfill_bridge_bottleneck(self, two_racks):
        hier = HierarchicalRouting(two_racks)
        provider = WeightProvider(two_racks, {"hier": hier})
        inter = [
            FlowSpec(i, two_racks.global_id(0, i), two_racks.global_id(1, i), "hier")
            for i in range(8)
        ]
        intra = [FlowSpec(100, 0, 5, "hier")]
        alloc = waterfill(two_racks, inter + intra, provider)
        # Inter-rack flows share 2 x 40G of bridge capacity.
        inter_total = sum(alloc.rates_bps[i] for i in range(8))
        assert inter_total <= 2 * gbps(40) * 1.001
        # The intra-rack flow is not bridge-constrained.
        assert alloc.rates_bps[100] > max(alloc.rates_bps[i] for i in range(8))


class TestTunnel:
    def test_roundtrip(self):
        packet = DataPacket(1, 5, 26, 0, (1, 2, 3), 0, b"hello").encode()
        frame = tunnel_packet(packet, (0, 5), (1, 10))
        assert untunnel_packet(frame) == packet
        assert len(frame) == len(packet) + ETHERNET_OVERHEAD_BYTES

    def test_fcs_detects_corruption(self):
        packet = DataPacket(1, 5, 26, 0, (1, 2, 3), 0, b"hello").encode()
        frame = bytearray(tunnel_packet(packet, (0, 5), (1, 10)))
        frame[20] ^= 0xFF
        with pytest.raises(WireFormatError):
            untunnel_packet(bytes(frame))

    def test_mac_encoding(self):
        mac = mac_for(3, 500)
        assert len(mac) == 6
        assert mac[0] == 0x02  # locally administered
        assert mac != mac_for(3, 501)
        with pytest.raises(WireFormatError):
            mac_for(70000, 0)

    def test_wrong_ethertype_rejected(self):
        frame = EthernetFrame(
            dst_mac=b"\x02" * 6, src_mac=b"\x02" * 6, payload=b"x", ethertype=0x0800
        ).encode()
        with pytest.raises(WireFormatError):
            untunnel_packet(frame)

    def test_mtu_enforced(self):
        with pytest.raises(WireFormatError):
            EthernetFrame(b"\x02" * 6, b"\x02" * 6, b"x" * 1501).encode()

    def test_overhead_fraction(self):
        assert tunnel_overhead_fraction(1500) == pytest.approx(18 / 1500)
        with pytest.raises(WireFormatError):
            tunnel_overhead_fraction(0)


class TestSwitchedOption:
    def test_structure(self):
        racks = [TorusTopology((4, 4)) for _ in range(2)]
        topo, switch = switched_multirack(
            racks, uplinks_per_rack=2, switch_capacity_bps=gbps(40)
        )
        assert topo.n_nodes == 33
        assert topo.degree(switch) == 4
        # Uplinks carry the switch capacity, fabric links the rack's.
        uplink = topo.link(switch, topo.neighbors(switch)[0])
        assert uplink.capacity_bps == gbps(40)
        assert topo.link(0, 1).capacity_bps == gbps(10)

    def test_cross_rack_reachability(self):
        racks = [TorusTopology((3, 3)) for _ in range(2)]
        topo, switch = switched_multirack(racks)
        assert topo.is_connected()
        # All cross-rack paths pass the switch.
        from repro.topology import enumerate_shortest_paths

        for path in enumerate_shortest_paths(topo, 0, 9 + 4, limit=20):
            assert switch in path

    def test_simulation_across_switch(self):
        from repro.sim import SimConfig, run_simulation
        from repro.workloads import FixedSize, poisson_trace

        racks = [TorusTopology((3, 3)) for _ in range(2)]
        topo, _ = switched_multirack(racks, uplinks_per_rack=2)
        trace = poisson_trace(topo, 30, 20_000, sizes=FixedSize(40_000), seed=3)
        metrics = run_simulation(topo, trace, SimConfig(stack="r2c2", seed=3))
        assert metrics.completion_rate() == 1.0
