"""The synth figure campaign: grid, determinism, caching, aggregation."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    FIGURES,
    SCALES,
    ExecutorConfig,
    Scenario,
    campaign_for,
    run_campaign,
)

pytestmark = [pytest.mark.experiments, pytest.mark.synth]

SMALL = SCALES["small"]
_CONFIG = ExecutorConfig(workers=1, strict=True)


def test_synth_campaign_small_grid():
    campaign = campaign_for("synth", SMALL)
    tasks = campaign.expand()
    # 3 fabric designs + 1 sharded sim + 1 churn oracle.
    assert len(tasks) == 5
    assert {t.scenario.kind for t in tasks} == {"synth", "sim", "churn"}
    assert len({t.seed for t in tasks}) == 5


def test_synth_scenario_kind_validates():
    assert Scenario(name="s", kind="synth").kind == "synth"
    with pytest.raises(ExperimentError, match="unknown kind"):
        Scenario(name="s", kind="synthesize")


def test_synth_task_results_and_cache_round_trip(tmp_path):
    campaign = campaign_for("synth", SMALL)
    synth_only = type(campaign)(
        name=campaign.name,
        scenarios=[s for s in campaign.scenarios if s.kind == "synth"],
        seed=campaign.seed,
        description=campaign.description,
    )
    first = run_campaign(synth_only, _CONFIG, cache_dir=str(tmp_path))
    assert first.status == "complete"
    flat = first.results["synth-flat/r0"]
    assert flat["design"] == "flat"
    assert flat["report"]["budget_ok"] is True
    assert flat["bisection_gbps"] > 0
    assert flat["tier_load"]["bottleneck"] == "gateway"
    assert first.results["synth-fattree/r0"]["report"]["switches"] >= 1

    # Same campaign again: every synthesis is cache-satisfied (fingerprints
    # are deterministic) and the results are identical.
    second = run_campaign(synth_only, _CONFIG, cache_dir=str(tmp_path))
    assert second.manifest["counts"]["cache_hits"] == 3
    assert second.results == first.results


def test_synth_aggregate_emits_all_tables(tmp_path):
    campaign = campaign_for("synth", SMALL)
    result = run_campaign(campaign, _CONFIG, cache_dir=str(tmp_path))
    assert result.status == "complete"
    tables = FIGURES["synth"].aggregate(result.results, SMALL)
    assert sorted(tables) == sorted(FIGURES["synth"].outputs)
    assert "flat" in tables["synth_fabrics"]
    assert "gateway" in tables["synth_tier_load"]
    assert "PASS" in tables["synth_campaign"]
    assert "completion_rate=1.000" in tables["synth_campaign"]
