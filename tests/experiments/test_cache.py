"""Content-addressed result cache: hits, misses, corruption tolerance."""

import json

import pytest

from repro.experiments import Campaign, ResultCache, Scenario

pytestmark = pytest.mark.experiments


@pytest.fixture
def task():
    scenario = Scenario(name="probe", kind="probe", dims=(2, 2))
    return Campaign(name="c", scenarios=[scenario], seed=1).expand()[0]


def test_miss_then_hit(tmp_path, task):
    cache = ResultCache(tmp_path)
    assert cache.load(task) is None
    cache.store(task, {"value": 41})
    assert cache.load(task) == {"value": 41}
    assert cache.stats() == {"hits": 1, "misses": 1, "corrupt": 0}


def test_layout_is_sharded_by_fingerprint(tmp_path, task):
    cache = ResultCache(tmp_path)
    path = cache.store(task, {"value": 1})
    fp = task.fingerprint()
    assert path == tmp_path / fp[:2] / f"{fp}.json"
    assert path.exists()


def test_record_is_self_describing(tmp_path, task):
    cache = ResultCache(tmp_path)
    record = json.loads(cache.store(task, {"value": 1}).read_text())
    assert record["fingerprint"] == task.fingerprint()
    assert record["key"] == task.key
    assert record["seed"] == task.seed
    assert record["scenario"]["name"] == "probe"


def test_corrupt_json_is_a_counted_miss(tmp_path, task):
    cache = ResultCache(tmp_path)
    path = cache.path_for(task.fingerprint())
    path.parent.mkdir(parents=True)
    path.write_text('{"fingerprint": truncated')
    assert cache.load(task) is None
    assert cache.corrupt == 1 and cache.misses == 1


def test_fingerprint_mismatch_is_a_counted_miss(tmp_path, task):
    cache = ResultCache(tmp_path)
    path = cache.path_for(task.fingerprint())
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"fingerprint": "0" * 64, "result": {}}))
    assert cache.load(task) is None
    assert cache.corrupt == 1


def test_missing_result_field_is_a_counted_miss(tmp_path, task):
    cache = ResultCache(tmp_path)
    path = cache.path_for(task.fingerprint())
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"fingerprint": task.fingerprint()}))
    assert cache.load(task) is None
    assert cache.corrupt == 1


def test_store_overwrites_corrupt_record(tmp_path, task):
    cache = ResultCache(tmp_path)
    path = cache.path_for(task.fingerprint())
    path.parent.mkdir(parents=True)
    path.write_text("garbage")
    assert cache.load(task) is None
    cache.store(task, {"value": 7})
    assert cache.load(task) == {"value": 7}
