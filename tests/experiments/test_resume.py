"""Checkpoint/resume semantics: kill a campaign mid-run, resume it, and the
aggregate results are byte-identical to an uninterrupted run — with only the
missing tasks re-executed (satellite 4 of the campaign-runner PR).

The kill is injected through :class:`repro.validation.FaultEvent`, the same
deterministic fault-injection vocabulary the validation subsystem uses.
"""

import json

import pytest

from repro.experiments import Campaign, ExecutorConfig, Scenario, run_campaign
from repro.validation import FaultEvent

pytestmark = pytest.mark.experiments


def make_campaign():
    scenarios = [
        Scenario(name=f"cell{i}", kind="probe", dims=(2, 2), replicates=2)
        for i in range(3)
    ]
    return Campaign(name="resumable", scenarios=scenarios, seed=42)


def aggregate_bytes(run):
    return json.dumps(run.results, sort_keys=True).encode()


def test_kill_then_resume_is_byte_identical(tmp_path):
    campaign = make_campaign()
    # Reference: one uninterrupted run (separate cache).
    reference = run_campaign(
        campaign, ExecutorConfig(workers=1), cache_dir=tmp_path / "ref"
    )
    assert reference.complete

    # Interrupted run: the kill_campaign fault stops after 2 fresh tasks.
    cache_dir = tmp_path / "cache"
    killed = run_campaign(
        campaign,
        ExecutorConfig(workers=1),
        cache_dir=cache_dir,
        fault_events=[FaultEvent(at_ns=2, kind="kill_campaign", target=None)],
    )
    assert killed.status == "interrupted"
    assert killed.manifest["counts"]["computed"] == 2
    assert killed.manifest["counts"]["pending"] == 4

    # Resume: only the 4 missing tasks run; the 2 completed are cache hits.
    resumed = run_campaign(campaign, ExecutorConfig(workers=1), cache_dir=cache_dir)
    assert resumed.complete
    assert resumed.manifest["counts"]["cache_hits"] == 2
    assert resumed.manifest["counts"]["computed"] == 4

    assert aggregate_bytes(resumed) == aggregate_bytes(reference)


def test_double_kill_then_resume(tmp_path):
    """Two successive crashes still converge, one increment at a time."""
    campaign = make_campaign()
    cache_dir = tmp_path / "cache"
    kill = [FaultEvent(at_ns=2, kind="kill_campaign", target=None)]

    first = run_campaign(
        campaign, ExecutorConfig(workers=1), cache_dir=cache_dir, fault_events=kill
    )
    second = run_campaign(
        campaign, ExecutorConfig(workers=1), cache_dir=cache_dir, fault_events=kill
    )
    assert first.status == second.status == "interrupted"
    assert second.manifest["counts"]["cache_hits"] == 2
    final = run_campaign(campaign, ExecutorConfig(workers=1), cache_dir=cache_dir)
    assert final.complete
    assert final.manifest["counts"]["cache_hits"] == 4
    assert final.manifest["counts"]["computed"] == 2

    reference = run_campaign(
        campaign, ExecutorConfig(workers=1), cache_dir=tmp_path / "ref"
    )
    assert aggregate_bytes(final) == aggregate_bytes(reference)


def test_fully_cached_resume_computes_nothing(tmp_path):
    campaign = make_campaign()
    cache_dir = tmp_path / "cache"
    run_campaign(campaign, ExecutorConfig(workers=1), cache_dir=cache_dir)
    rerun = run_campaign(campaign, ExecutorConfig(workers=1), cache_dir=cache_dir)
    assert rerun.complete
    assert rerun.manifest["counts"]["cache_hits"] == 6
    assert rerun.manifest["counts"]["computed"] == 0


def test_resume_after_chaos_shares_cache_with_clean_runs(tmp_path):
    """Injected worker failures (retry chaos) never perturb cache keys, so
    a chaotic interrupted run and a clean resume share every record."""
    campaign = make_campaign()
    cache_dir = tmp_path / "cache"
    chaotic = run_campaign(
        campaign,
        ExecutorConfig(workers=1, backoff_s=0.0),
        cache_dir=cache_dir,
        fault_events=[
            FaultEvent(at_ns=2, kind="kill_campaign", target=None),
            FaultEvent(at_ns=1, kind="worker_failure", target="cell0/r0"),
        ],
    )
    assert chaotic.status == "interrupted"
    assert chaotic.manifest["counts"]["retries"] == 1
    resumed = run_campaign(campaign, ExecutorConfig(workers=1), cache_dir=cache_dir)
    assert resumed.complete
    assert resumed.manifest["counts"]["cache_hits"] == 2

    reference = run_campaign(
        campaign, ExecutorConfig(workers=1), cache_dir=tmp_path / "ref"
    )
    assert aggregate_bytes(resumed) == aggregate_bytes(reference)
