"""Scenario/Campaign/Task specs: round-trips, fingerprints, seeds."""

import json

import pytest

from repro.core import derive_seed
from repro.errors import ExperimentError
from repro.experiments import CACHE_SCHEMA_VERSION, Campaign, Scenario, Task

pytestmark = pytest.mark.experiments


def make_scenario(**overrides):
    kwargs = dict(
        name="rps/uniform",
        kind="routing",
        topology="torus",
        dims=(8, 8),
        params={"protocol": "rps", "pattern": "uniform"},
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
def test_scenario_json_round_trip():
    scenario = make_scenario(replicates=3, capacity_bps=10e9)
    clone = Scenario.from_json(scenario.to_json())
    assert clone == scenario
    assert clone.fingerprint() == scenario.fingerprint()


def test_scenario_params_order_insensitive():
    a = make_scenario(params={"protocol": "rps", "pattern": "uniform"})
    b = make_scenario(params={"pattern": "uniform", "protocol": "rps"})
    assert a == b
    assert a.fingerprint() == b.fingerprint()


def test_scenario_fingerprint_sensitive_to_content():
    base = make_scenario()
    assert base.fingerprint() != make_scenario(dims=(4, 4)).fingerprint()
    assert (
        base.fingerprint()
        != make_scenario(params={"protocol": "dor", "pattern": "uniform"}).fingerprint()
    )
    assert base.fingerprint() != make_scenario(replicates=2).fingerprint()


def test_scenario_param_access():
    scenario = make_scenario()
    assert scenario.param("protocol") == "rps"
    assert scenario.param("absent", 42) == 42
    assert scenario.params_dict == {"protocol": "rps", "pattern": "uniform"}


def test_scenario_rejects_unknown_kind():
    with pytest.raises(ExperimentError, match="unknown kind"):
        make_scenario(kind="quantum")


def test_scenario_rejects_bad_replicates():
    with pytest.raises(ExperimentError, match="replicates"):
        make_scenario(replicates=0)


# ----------------------------------------------------------------------
# Campaign expansion
# ----------------------------------------------------------------------
def test_campaign_rejects_duplicate_scenario_names():
    with pytest.raises(ExperimentError, match="duplicate"):
        Campaign(name="c", scenarios=[make_scenario(), make_scenario()], seed=1)


def test_expand_keys_and_seeds():
    s1 = make_scenario(name="a", replicates=2)
    s2 = make_scenario(name="b")
    campaign = Campaign(name="c", scenarios=[s1, s2], seed=99)
    tasks = campaign.expand()
    assert [t.key for t in tasks] == ["a/r0", "a/r1", "b/r0"]
    # Seeds derive from (campaign seed, scenario fingerprint, replicate):
    # stable, distinct, and independent of sibling scenarios.
    assert tasks[0].seed == derive_seed(99, s1.fingerprint(), 0)
    assert len({t.seed for t in tasks}) == 3
    filtered = Campaign(name="c", scenarios=[s2], seed=99).expand()
    assert filtered[0].seed == tasks[2].seed
    assert filtered[0].fingerprint() == tasks[2].fingerprint()


def test_task_payload_round_trip():
    task = Campaign(name="c", scenarios=[make_scenario()], seed=5).expand()[0]
    clone = Task.from_payload(json.loads(json.dumps(task.to_payload())))
    assert clone == task
    assert clone.fingerprint() == task.fingerprint()


def test_task_fingerprint_includes_schema_version(monkeypatch):
    task = Campaign(name="c", scenarios=[make_scenario()], seed=5).expand()[0]
    before = task.fingerprint()
    import repro.experiments.spec as spec_module

    monkeypatch.setattr(spec_module, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1)
    assert task.fingerprint() != before


def test_campaign_json_round_trip():
    campaign = Campaign(
        name="c",
        scenarios=[make_scenario(name="a"), make_scenario(name="b")],
        seed=3,
        description="two cells",
    )
    clone = Campaign.from_json(campaign.to_json())
    assert clone == campaign
    assert clone.fingerprint() == campaign.fingerprint()
    assert [t.seed for t in clone.expand()] == [t.seed for t in campaign.expand()]
