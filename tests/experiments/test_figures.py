"""Figure campaign specs: grids, seeds, and parity with the direct path."""

import json
import os

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExecutorConfig,
    FIGURES,
    SCALES,
    campaign_for,
    fig02_table,
    run_campaign,
)

pytestmark = pytest.mark.experiments

SMALL = SCALES["small"]


def test_registry_names_and_outputs():
    assert sorted(FIGURES) == [
        "fig02", "fig07", "fig10_14", "fig17", "fig18", "synth",
    ]
    for fig in FIGURES.values():
        assert fig.outputs, fig.name


def test_campaign_for_unknown_figure():
    with pytest.raises(ExperimentError, match="unknown figure"):
        campaign_for("fig99", SMALL)


@pytest.mark.parametrize(
    "name, n_tasks",
    [
        ("fig02", 24),       # 4 protocols x 6 patterns
        ("fig07", 1),
        ("fig10_14", 9),     # 3 stacks x 3 taus at small scale
        ("fig17", 4),        # 4 headrooms
        ("fig18", 20),       # 5 loads x 4 selectors at small scale
    ],
)
def test_small_scale_grid_sizes(name, n_tasks):
    campaign = campaign_for(name, SMALL)
    tasks = campaign.expand()
    assert len(tasks) == n_tasks
    assert len({t.key for t in tasks}) == n_tasks
    assert len({t.seed for t in tasks}) == n_tasks


def test_figure_campaign_specs_survive_json():
    for name in FIGURES:
        campaign = campaign_for(name, SMALL)
        clone = type(campaign).from_json(campaign.to_json())
        assert clone.fingerprint() == campaign.fingerprint()


def test_fig02_campaign_matches_direct_analysis():
    """A filtered fig02 campaign reproduces the direct (non-campaign)
    saturation-throughput computation bit-for-bit."""
    from repro.analysis import saturation_throughput
    from repro.routing.base import make_protocol
    from repro.topology import TorusTopology
    from repro.workloads import STANDARD_PATTERNS

    campaign = campaign_for("fig02", SMALL)
    wanted = {"rps/uniform", "vlb/tornado"}
    filtered = type(campaign)(
        name=campaign.name,
        scenarios=[s for s in campaign.scenarios if s.name in wanted],
        seed=campaign.seed,
    )
    run = run_campaign(filtered, ExecutorConfig(workers=1, strict=True))

    topo = TorusTopology((8, 8))
    for protocol, pattern in (("rps", "uniform"), ("vlb", "tornado")):
        direct = saturation_throughput(
            make_protocol(protocol, topo),
            STANDARD_PATTERNS[pattern].matrix(topo),
        )
        assert run.results[f"{protocol}/{pattern}/r0"]["throughput"] == direct


def test_fig02_table_reports_missing_tasks():
    with pytest.raises(ExperimentError, match="missing task result"):
        fig02_table({})


@pytest.mark.skipif(
    len(os.sched_getaffinity(0)) < 2,
    reason="needs >= 2 CPU cores for a meaningful parallel run",
)
def test_parallel_fig02_is_identical_and_not_slower():
    """Acceptance criterion: a 2-worker sweep of the Figure 2 grid is
    byte-identical to the serial path and faster on multicore hosts."""
    import time

    campaign = campaign_for("fig02", SMALL)
    t0 = time.perf_counter()
    serial = run_campaign(campaign, ExecutorConfig(workers=1))
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    pooled = run_campaign(campaign, ExecutorConfig(workers=2))
    t_pooled = time.perf_counter() - t0
    assert json.dumps(serial.results, sort_keys=True) == json.dumps(
        pooled.results, sort_keys=True
    )
    # Generous bound: parallel must not be dramatically slower; on idle
    # multicore hosts it is measurably faster (CI asserts the smoke run).
    assert t_pooled < t_serial * 1.5
