"""The campaign executor: determinism, retries, timeouts, degradation."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    Campaign,
    ExecutorConfig,
    Scenario,
    run_campaign,
)
from repro.validation import FaultEvent

pytestmark = pytest.mark.experiments


def probe_campaign(n_scenarios=4, replicates=2, seed=11, **params):
    scenarios = [
        Scenario(
            name=f"probe{i}", kind="probe", dims=(2, 2),
            params=params, replicates=replicates,
        )
        for i in range(n_scenarios)
    ]
    return Campaign(name="probes", scenarios=scenarios, seed=seed)


def test_serial_run_completes_in_expansion_order():
    campaign = probe_campaign()
    run = run_campaign(campaign, ExecutorConfig(workers=1))
    assert run.complete
    assert list(run.results) == [t.key for t in campaign.expand()]
    assert run.manifest["counts"] == {
        "tasks": 8,
        "cache_hits": 0,
        "computed": 8,
        "failed": 0,
        "pending": 0,
        "retries": 0,
        "corrupt_cache_records": 0,
    }


def test_parallel_results_byte_identical_to_serial():
    campaign = probe_campaign()
    serial = run_campaign(campaign, ExecutorConfig(workers=1))
    pooled = run_campaign(campaign, ExecutorConfig(workers=2))
    assert json.dumps(serial.results, sort_keys=True) == json.dumps(
        pooled.results, sort_keys=True
    )
    assert list(serial.results) == list(pooled.results)


def test_retry_on_injected_scenario_failure():
    # fail_attempts lives in the scenario params: the task fails its first
    # attempt and succeeds on retry.
    campaign = probe_campaign(n_scenarios=1, replicates=1, fail_attempts=1)
    config = ExecutorConfig(workers=1, max_retries=2, backoff_s=0.0)
    run = run_campaign(campaign, config)
    assert run.complete
    assert run.manifest["counts"]["retries"] == 1
    assert run.manifest["tasks"]["probe0/r0"]["attempts"] == 2


def test_forced_failures_do_not_change_fingerprints():
    # Chaos injection lives in the executor config, NOT the scenario, so
    # results (and cache keys) are identical with and without it.
    campaign = probe_campaign(n_scenarios=2, replicates=1)
    clean = run_campaign(campaign, ExecutorConfig(workers=1))
    chaotic = run_campaign(
        campaign,
        ExecutorConfig(
            workers=1, backoff_s=0.0,
            forced_failures={"probe0/r0": 1},
        ),
    )
    assert chaotic.complete
    assert chaotic.manifest["counts"]["retries"] == 1
    assert json.dumps(clean.results, sort_keys=True) == json.dumps(
        chaotic.results, sort_keys=True
    )


def test_worker_failure_fault_event_forces_retries():
    campaign = probe_campaign(n_scenarios=1, replicates=1)
    faults = [FaultEvent(at_ns=2, kind="worker_failure", target="probe0/r0")]
    run = run_campaign(
        campaign,
        ExecutorConfig(workers=1, max_retries=3, backoff_s=0.0),
        fault_events=faults,
    )
    assert run.complete
    assert run.manifest["counts"]["retries"] == 2


def test_exhausted_retries_fail_the_task_and_campaign():
    campaign = probe_campaign(n_scenarios=2, replicates=1, fail_attempts=99)
    run = run_campaign(campaign, ExecutorConfig(workers=1, max_retries=1, backoff_s=0.0))
    assert run.status == "failed"
    assert run.manifest["counts"]["failed"] == 2
    assert "probe0/r0" not in run.results
    assert "InjectedWorkerFailure" in run.manifest["tasks"]["probe0/r0"]["error"]


def test_strict_mode_raises_on_failure():
    campaign = probe_campaign(n_scenarios=1, replicates=1, fail_attempts=99)
    with pytest.raises(ExperimentError, match="failed after retries"):
        run_campaign(
            campaign,
            ExecutorConfig(workers=1, max_retries=0, backoff_s=0.0, strict=True),
        )


def test_kill_campaign_fault_interrupts_after_threshold():
    campaign = probe_campaign(n_scenarios=3, replicates=1)
    faults = [FaultEvent(at_ns=2, kind="kill_campaign", target=None)]
    run = run_campaign(campaign, ExecutorConfig(workers=1), fault_events=faults)
    assert run.status == "interrupted"
    assert run.manifest["counts"]["computed"] == 2
    assert run.manifest["counts"]["pending"] == 1
    assert run.manifest["tasks"]["probe2/r0"] == {"status": "pending"}


def test_pool_timeout_abandons_and_records_failure():
    campaign = probe_campaign(n_scenarios=1, replicates=1, sleep_s=5.0)
    run = run_campaign(
        campaign,
        ExecutorConfig(
            workers=2, task_timeout_s=0.3, max_retries=0, backoff_s=0.0
        ),
    )
    assert run.status == "failed"
    assert "timeout" in run.manifest["tasks"]["probe0/r0"]["error"]


def test_degrades_to_serial_when_pool_unavailable(monkeypatch):
    import repro.experiments.runner as runner_module

    def no_pool(*args, **kwargs):
        raise OSError("no processes for you")

    monkeypatch.setattr(runner_module, "ProcessPoolExecutor", no_pool)
    campaign = probe_campaign(n_scenarios=2, replicates=1)
    run = run_campaign(campaign, ExecutorConfig(workers=4))
    assert run.complete
    assert run.manifest["mode"] == "serial"
    assert len(run.results) == 2


def test_manifest_written_atomically(tmp_path):
    campaign = probe_campaign(n_scenarios=1, replicates=1)
    manifest_path = tmp_path / "manifest.json"
    run = run_campaign(campaign, ExecutorConfig(workers=1), manifest_path=manifest_path)
    on_disk = json.loads(manifest_path.read_text())
    assert on_disk["campaign"] == "probes"
    assert on_disk["campaign_fingerprint"] == campaign.fingerprint()
    assert on_disk["status"] == run.status == "complete"
    assert on_disk["tasks"]["probe0/r0"]["status"] == "computed"


def test_invalid_executor_config():
    with pytest.raises(ExperimentError):
        ExecutorConfig(workers=0)
    with pytest.raises(ExperimentError):
        ExecutorConfig(max_retries=-1)
