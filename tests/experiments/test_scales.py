"""The REPRO_SCALE parameter tables (satellite of the campaign runner)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import SCALE_ENV_VAR, SCALES, current_scale

pytestmark = pytest.mark.experiments


def test_all_three_scales_present():
    assert sorted(SCALES) == ["medium", "paper", "small"]


@pytest.mark.parametrize(
    "name, dims, n_flows, tau_default, crossval",
    [
        ("small", (4, 4, 4), 600, 2_000, 60),
        ("medium", (6, 6, 6), 1_500, 1_000, 150),
        ("paper", (8, 8, 8), 4_000, 1_000, 1_000),
    ],
)
def test_scale_parameter_tables(name, dims, n_flows, tau_default, crossval):
    scale = SCALES[name]
    assert scale.name == name
    assert scale.torus_dims == dims
    assert scale.n_flows == n_flows
    assert scale.tau_default_ns == tau_default
    assert scale.crossval_flows == crossval
    assert scale.n_nodes == dims[0] * dims[1] * dims[2]
    assert len(scale.tau_sweep_ns) >= 3
    assert all(0 < load <= 1.0 for load in scale.fig18_loads)


def test_paper_scale_matches_the_paper():
    # §5.2: 512-node 3D torus, and Figure 18 sweeps load 0.1..1.0.
    assert SCALES["paper"].n_nodes == 512
    assert len(SCALES["paper"].fig18_loads) == 10


def test_current_scale_default_and_env(monkeypatch):
    monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
    assert current_scale().name == "small"
    monkeypatch.setenv(SCALE_ENV_VAR, "medium")
    assert current_scale().name == "medium"
    assert current_scale("paper").name == "paper"  # explicit beats env


def test_invalid_scale_is_a_clear_error(monkeypatch):
    with pytest.raises(ExperimentError, match="tiny"):
        current_scale("tiny")
    monkeypatch.setenv(SCALE_ENV_VAR, "huge")
    with pytest.raises(ExperimentError, match=SCALE_ENV_VAR):
        current_scale()


def test_benchmarks_conftest_validates_env(monkeypatch):
    """benchmarks/conftest.py turns a bad REPRO_SCALE into a pytest usage
    error at configure time instead of a per-module collection traceback."""
    import importlib.util
    import pathlib

    conftest_path = (
        pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "conftest.py"
    )
    spec = importlib.util.spec_from_file_location("bench_conftest", conftest_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    monkeypatch.setenv(SCALE_ENV_VAR, "bogus")
    with pytest.raises(pytest.UsageError, match="bogus"):
        module.pytest_configure(config=None)
    monkeypatch.setenv(SCALE_ENV_VAR, "small")
    module.pytest_configure(config=None)  # valid name passes
