"""Epoch scheduling arithmetic and the generation-based short-circuit."""

import pytest

from repro.congestion import (
    ControllerConfig,
    FlowSpec,
    RateController,
    WeightProvider,
)
from repro.types import usec


def make(topology, **cfg):
    return RateController(topology, node=0, config=ControllerConfig(**cfg))


class TestMaybeRecomputeArithmetic:
    def test_before_first_epoch_is_noop(self, torus2d):
        ctrl = make(torus2d)
        assert ctrl.maybe_recompute(usec(499)) is None
        assert ctrl.next_epoch_ns() == usec(500)
        assert ctrl.stats == []

    def test_exact_boundary_fires_and_advances_one_interval(self, torus2d):
        ctrl = make(torus2d)
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        assert ctrl.maybe_recompute(usec(500)) is not None
        assert ctrl.next_epoch_ns() == usec(1000)

    def test_missed_epochs_are_skipped_not_replayed(self, torus2d):
        ctrl = make(torus2d)
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        # 2750 us is past epochs at 500/1000/1500/2000/2500; one recompute
        # runs and the schedule lands on the next future boundary.
        ctrl.maybe_recompute(usec(2750))
        assert ctrl.next_epoch_ns() == usec(3000)
        assert len([s for s in ctrl.stats if not s.skipped]) == 1

    def test_landing_on_far_boundary_schedules_strictly_later(self, torus2d):
        ctrl = make(torus2d)
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        ctrl.maybe_recompute(usec(3000))  # exactly on a (missed) boundary
        assert ctrl.next_epoch_ns() == usec(3500)

    def test_interval_zero_is_clamped(self, torus2d):
        # recompute_interval_ns=0 (continuous recomputation) must not
        # divide by zero or loop; the divisor clamps to 1 ns.
        ctrl = make(torus2d, recompute_interval_ns=0)
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        assert ctrl.maybe_recompute(0) is not None
        assert ctrl.next_epoch_ns() == 1
        assert ctrl.maybe_recompute(5) is not None
        assert ctrl.next_epoch_ns() == 6


class TestGenerationShortCircuit:
    def test_idle_epoch_is_skipped_and_identical(self, torus2d):
        ctrl = make(torus2d)
        for i in range(4):
            ctrl.on_flow_started(FlowSpec(i, i, i + 4), now_ns=0)
        first = ctrl.recompute(usec(500))
        again = ctrl.recompute(usec(1000))
        assert again is first  # same object: nothing recomputed
        assert ctrl.stats[-1].skipped
        assert not ctrl.stats[-2].skipped

    def test_skipped_allocation_equals_forced_recompute(self, torus2d):
        """The short-circuited allocation must match a from-scratch fill."""
        shared = WeightProvider(torus2d)
        ctrl = make(torus2d)
        fresh = RateController(torus2d, node=0, provider=shared)
        for i in range(6):
            spec = FlowSpec(i, i % torus2d.n_nodes, (i + 3) % torus2d.n_nodes)
            ctrl.on_flow_started(spec, now_ns=0)
            fresh.on_flow_started(spec, now_ns=0)
        ctrl.recompute(usec(500))
        skipped = ctrl.recompute(usec(1000))  # short-circuited
        forced = fresh.recompute(usec(1000))  # fresh controller, full fill
        assert skipped.rates_bps == pytest.approx(forced.rates_bps)
        assert skipped.bottleneck_link == forced.bottleneck_link

    def test_any_table_mutation_defeats_the_short_circuit(self, torus2d):
        ctrl = make(torus2d)
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        ctrl.recompute(usec(500))
        ctrl.on_demand_update(1, 2e9)  # demand churn bumps the generation
        ctrl.recompute(usec(1000))
        assert not ctrl.stats[-1].skipped
        ctrl.on_flow_started(FlowSpec(2, 1, 6), now_ns=usec(1000))
        ctrl.recompute(usec(1500))
        assert not ctrl.stats[-1].skipped

    def test_skipped_stats_record_zero_cost_epoch(self, torus2d):
        ctrl = make(torus2d)
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        ctrl.recompute(usec(500))
        ctrl.recompute(usec(1000))
        stats = ctrl.stats[-1]
        assert stats.skipped
        assert stats.n_flows == 1
        assert stats.at_ns == usec(1000)
        # The short-circuit must be orders of magnitude under the interval.
        assert stats.duration_ns < ctrl.config.recompute_interval_ns


class TestContentKey:
    def test_order_independent(self, torus2d):
        a = RateController(torus2d, node=0)
        b = RateController(torus2d, node=1)
        specs = [FlowSpec(i, i, i + 4) for i in range(4)]
        for spec in specs:
            a.table.add(spec)
        for spec in reversed(specs):
            b.table.add(spec)
        assert a.table.content_key == b.table.content_key

    def test_demand_changes_key_but_not_structure(self, torus2d):
        ctrl = RateController(torus2d, node=0)
        ctrl.table.add(FlowSpec(1, 0, 5))
        key = ctrl.table.content_key
        structure = ctrl.table.structure_generation
        ctrl.table.update_demand(1, 3e9)
        assert ctrl.table.content_key != key
        assert ctrl.table.structure_generation == structure

    def test_remove_restores_key(self, torus2d):
        ctrl = RateController(torus2d, node=0)
        ctrl.table.add(FlowSpec(1, 0, 5))
        key = ctrl.table.content_key
        ctrl.table.add(FlowSpec(2, 1, 6))
        ctrl.table.remove(2)
        assert ctrl.table.content_key == key

    def test_shared_cache_hits_across_controllers(self, torus2d):
        """Two controllers with equal tables share one water-fill result."""
        provider = WeightProvider(torus2d)
        cache = {}
        a = RateController(torus2d, node=0, provider=provider, allocation_cache=cache)
        b = RateController(torus2d, node=1, provider=provider, allocation_cache=cache)
        for spec in [FlowSpec(i, i, i + 4) for i in range(3)]:
            a.table.add(spec)
            b.table.add(spec)
        alloc_a = a.recompute(usec(500))
        alloc_b = b.recompute(usec(500))
        assert alloc_b is alloc_a  # second controller reused the memo
        assert len(cache) == 1
