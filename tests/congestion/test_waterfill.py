"""Tests for the weighted water-filling allocator."""

import math

import pytest

from repro.congestion import FlowSpec, WeightProvider, effective_capacities, waterfill
from repro.errors import CongestionControlError
from repro.routing.static import StaticPathSet
from repro.topology import GraphTopology
from repro.types import gbps


@pytest.fixture
def two_node():
    """Two nodes, one cable, capacity 10 (easy arithmetic)."""
    return GraphTopology(2, [(0, 1)], capacity_bps=10.0, latency_ns=0)


def static_provider(topology, paths_by_pair):
    static = StaticPathSet(topology)
    for (src, dst), paths in paths_by_pair.items():
        static.set_paths(src, dst, paths)
    return WeightProvider(topology, {"static": static})


class TestBasics:
    def test_single_flow_gets_capacity(self, two_node):
        provider = static_provider(two_node, {(0, 1): [[0, 1]]})
        alloc = waterfill(two_node, [FlowSpec(1, 0, 1, "static")], provider)
        assert alloc.rates_bps[1] == pytest.approx(10.0)
        assert alloc.bottleneck_link[1] == two_node.link_id(0, 1)

    def test_equal_split(self, two_node):
        provider = static_provider(two_node, {(0, 1): [[0, 1]]})
        flows = [FlowSpec(i, 0, 1, "static") for i in range(4)]
        alloc = waterfill(two_node, flows, provider)
        for i in range(4):
            assert alloc.rates_bps[i] == pytest.approx(2.5)

    def test_weighted_split(self, two_node):
        provider = static_provider(two_node, {(0, 1): [[0, 1]]})
        flows = [
            FlowSpec(1, 0, 1, "static", weight=1.0),
            FlowSpec(2, 0, 1, "static", weight=3.0),
        ]
        alloc = waterfill(two_node, flows, provider)
        assert alloc.rates_bps[1] == pytest.approx(2.5)
        assert alloc.rates_bps[2] == pytest.approx(7.5)

    def test_empty_flow_list(self, two_node, provider):
        alloc = waterfill(two_node, [], WeightProvider(two_node))
        assert alloc.rates_bps == {}
        assert alloc.aggregate_throughput_bps() == 0.0

    def test_duplicate_flow_ids_rejected(self, two_node):
        provider = static_provider(two_node, {(0, 1): [[0, 1]]})
        flows = [FlowSpec(1, 0, 1, "static"), FlowSpec(1, 0, 1, "static")]
        with pytest.raises(CongestionControlError):
            waterfill(two_node, flows, provider)


class TestFigure4:
    """The paper's Figure 4 example: restricted splits lose utilization."""

    def test_r2c2_rates_two_thirds(self, fig4_topology):
        provider = static_provider(
            fig4_topology,
            {(0, 3): [[0, 3], [0, 2, 3]], (1, 3): [[1, 2, 3]]},
        )
        flows = [FlowSpec(1, 0, 3, "static"), FlowSpec(2, 1, 3, "static")]
        alloc = waterfill(fig4_topology, flows, provider)
        assert alloc.rates_bps[1] == pytest.approx(2 / 3)
        assert alloc.rates_bps[2] == pytest.approx(2 / 3)

    def test_exact_maxmin_is_one(self, fig4_topology):
        from repro.congestion import PathFlow, maxmin_rates

        rates = maxmin_rates(
            fig4_topology,
            [PathFlow(1, [[0, 3], [0, 2, 3]]), PathFlow(2, [[1, 2, 3]])],
        )
        assert rates[1] == pytest.approx(1.0, abs=1e-5)
        assert rates[2] == pytest.approx(1.0, abs=1e-5)

    def test_rerouting_recovers_utilization(self, fig4_topology):
        # §3.3.1: "flow f1's routing would be changed so it only uses the
        # path 1 -> 4" — then both flows reach rate 1.
        provider = static_provider(
            fig4_topology,
            {(0, 3): [[0, 3]], (1, 3): [[1, 2, 3]]},
        )
        flows = [FlowSpec(1, 0, 3, "static"), FlowSpec(2, 1, 3, "static")]
        alloc = waterfill(fig4_topology, flows, provider)
        assert alloc.rates_bps[1] == pytest.approx(1.0)
        assert alloc.rates_bps[2] == pytest.approx(1.0)


class TestHeadroom:
    def test_headroom_reduces_capacity(self, two_node):
        provider = static_provider(two_node, {(0, 1): [[0, 1]]})
        alloc = waterfill(
            two_node, [FlowSpec(1, 0, 1, "static")], provider, headroom=0.05
        )
        assert alloc.rates_bps[1] == pytest.approx(9.5)

    def test_invalid_headroom(self, two_node):
        with pytest.raises(CongestionControlError):
            effective_capacities(two_node, headroom=1.0)
        with pytest.raises(CongestionControlError):
            effective_capacities(two_node, headroom=-0.1)

    def test_effective_capacities_shape(self, torus2d):
        caps = effective_capacities(torus2d, 0.1)
        assert caps.shape == (torus2d.n_links,)
        assert caps[0] == pytest.approx(torus2d.capacity_bps * 0.9)


class TestDemands:
    def test_demand_limited_flow_frees_capacity(self, two_node):
        provider = static_provider(two_node, {(0, 1): [[0, 1]]})
        flows = [
            FlowSpec(1, 0, 1, "static", demand_bps=2.0),
            FlowSpec(2, 0, 1, "static"),
        ]
        alloc = waterfill(two_node, flows, provider)
        assert alloc.rates_bps[1] == pytest.approx(2.0)
        assert alloc.rates_bps[2] == pytest.approx(8.0)
        assert alloc.bottleneck_link[1] is None  # demand-frozen

    def test_all_demand_limited_leaves_slack(self, two_node):
        provider = static_provider(two_node, {(0, 1): [[0, 1]]})
        flows = [FlowSpec(i, 0, 1, "static", demand_bps=1.0) for i in range(3)]
        alloc = waterfill(two_node, flows, provider)
        assert all(alloc.rates_bps[i] == pytest.approx(1.0) for i in range(3))
        assert alloc.max_link_utilization() < 0.5

    def test_demand_above_fair_share_is_ignored(self, two_node):
        provider = static_provider(two_node, {(0, 1): [[0, 1]]})
        flows = [
            FlowSpec(1, 0, 1, "static", demand_bps=100.0),
            FlowSpec(2, 0, 1, "static"),
        ]
        alloc = waterfill(two_node, flows, provider)
        assert alloc.rates_bps[1] == pytest.approx(5.0)


class TestPriorities:
    def test_strict_priority(self, two_node):
        provider = static_provider(two_node, {(0, 1): [[0, 1]]})
        flows = [
            FlowSpec(1, 0, 1, "static", priority=0),
            FlowSpec(2, 0, 1, "static", priority=1),
        ]
        alloc = waterfill(two_node, flows, provider)
        assert alloc.rates_bps[1] == pytest.approx(10.0)
        assert alloc.rates_bps[2] == pytest.approx(0.0)

    def test_lower_priority_gets_leftovers(self, two_node):
        provider = static_provider(two_node, {(0, 1): [[0, 1]]})
        flows = [
            FlowSpec(1, 0, 1, "static", priority=0, demand_bps=4.0),
            FlowSpec(2, 0, 1, "static", priority=1),
        ]
        alloc = waterfill(two_node, flows, provider)
        assert alloc.rates_bps[1] == pytest.approx(4.0)
        assert alloc.rates_bps[2] == pytest.approx(6.0)

    def test_weights_within_priority_level(self, two_node):
        provider = static_provider(two_node, {(0, 1): [[0, 1]]})
        flows = [
            FlowSpec(1, 0, 1, "static", priority=0, demand_bps=2.0),
            FlowSpec(2, 0, 1, "static", priority=1, weight=1.0),
            FlowSpec(3, 0, 1, "static", priority=1, weight=3.0),
        ]
        alloc = waterfill(two_node, flows, provider)
        assert alloc.rates_bps[2] == pytest.approx(2.0)
        assert alloc.rates_bps[3] == pytest.approx(6.0)


class TestMultipath:
    def test_rps_flow_exceeds_single_link(self, torus2d):
        # Spraying over several first hops lets one flow beat link capacity.
        provider = WeightProvider(torus2d)
        alloc = waterfill(torus2d, [FlowSpec(1, 0, 10, "rps")], provider)
        assert alloc.rates_bps[1] > torus2d.capacity_bps

    def test_load_never_exceeds_capacity(self, torus2d):
        provider = WeightProvider(torus2d)
        flows = [
            FlowSpec(i, src, (src + 5) % 16, "rps")
            for i, src in enumerate(range(0, 16, 2))
        ]
        alloc = waterfill(torus2d, flows, provider, headroom=0.05)
        assert (alloc.link_load_bps <= alloc.link_capacity_bps * (1 + 1e-6)).all()

    def test_max_min_property_no_starved_flow(self, torus3d):
        # Every flow is either at its bottleneck's fair level or demand.
        provider = WeightProvider(torus3d)
        flows = [FlowSpec(i, i, (i * 7 + 3) % 64, "rps") for i in range(20)]
        alloc = waterfill(torus3d, flows, provider)
        assert min(alloc.rates_bps.values()) > 0

    def test_iterations_recorded(self, torus2d):
        provider = WeightProvider(torus2d)
        flows = [FlowSpec(i, i, (i + 3) % 16, "rps") for i in range(8)]
        alloc = waterfill(torus2d, flows, provider)
        assert alloc.iterations >= 1
