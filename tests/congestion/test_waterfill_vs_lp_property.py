"""Property: on random sparse single-path flow sets the water-fill and the
LP-based max-min reference allocate identical rates (within 1e-6 relative).

With every flow pinned to one path the two solve the same optimization, so
this property pins down the allocator's fixed-point arithmetic across
arbitrary random fabrics and flow patterns.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congestion import WeightProvider, waterfill
from repro.congestion.mp_reference import PathFlow, maxmin_rates
from repro.topology import TorusTopology
from repro.validation import (
    random_connected_topology,
    random_single_path_specs,
    waterfill_vs_lp_case,
)

pytestmark = pytest.mark.validation


class TestWaterfillMatchesLpReference:
    @given(
        seed=st.integers(0, 10**6),
        n_nodes=st.integers(4, 10),
        n_flows=st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_rates_agree_within_1e6(self, seed, n_nodes, n_flows):
        topology = random_connected_topology(seed, n_nodes=n_nodes)
        specs = random_single_path_specs(seed, topology, n_flows=n_flows)
        case = waterfill_vs_lp_case(topology, specs, seed=seed)
        assert case.max_rel_error <= 1e-6, case.description

    @given(seed=st.integers(0, 10**6), n_flows=st.integers(2, 10))
    @settings(max_examples=15, deadline=None)
    def test_torus_flow_sets_agree_too(self, seed, n_flows):
        """Same property on the paper's own fabric rather than random graphs."""
        topology = TorusTopology((4, 4))
        specs = random_single_path_specs(seed, topology, n_flows=n_flows)
        provider = WeightProvider(topology)
        allocation = waterfill(topology, specs, provider, headroom=0.0)
        ecmp = provider.protocol("ecmp")
        reference = maxmin_rates(
            topology,
            [
                PathFlow(s.flow_id, [ecmp.flow_path(s.src, s.dst, s.flow_id)])
                for s in specs
            ],
        )
        for spec in specs:
            lp = reference[spec.flow_id]
            wf = allocation.rates_bps[spec.flow_id]
            assert abs(wf - lp) <= 1e-6 * max(lp, 1e-12)
