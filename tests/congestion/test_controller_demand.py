"""Tests for the rate controller and demand estimation."""

import math

import pytest

from repro.congestion import (
    ControllerConfig,
    DemandEstimator,
    FlowSpec,
    RateController,
    WeightProvider,
)
from repro.errors import CongestionControlError
from repro.types import usec


class TestControllerConfig:
    def test_defaults_match_paper(self):
        cfg = ControllerConfig()
        assert cfg.headroom == 0.05
        assert cfg.recompute_interval_ns == usec(500)

    def test_validation(self):
        with pytest.raises(CongestionControlError):
            ControllerConfig(recompute_interval_ns=-1)
        with pytest.raises(CongestionControlError):
            ControllerConfig(initial_rate_policy="warp-speed")


class TestRateController:
    def make(self, topology, **cfg):
        return RateController(
            topology, node=0, config=ControllerConfig(**cfg)
        )

    def test_young_flow_rides_initial_rate(self, torus2d):
        ctrl = self.make(torus2d, initial_rate_policy="line_rate")
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        assert ctrl.rate_for(1) == torus2d.capacity_bps

    def test_epoch_recompute_assigns_fair_rate(self, torus2d):
        ctrl = self.make(torus2d)
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        assert ctrl.maybe_recompute(usec(100)) is None  # before the epoch
        allocation = ctrl.maybe_recompute(usec(500))
        assert allocation is not None
        assert ctrl.rate_for(1) == allocation.rates_bps[1]

    def test_epoch_schedule_skips_idle_epochs(self, torus2d):
        ctrl = self.make(torus2d)
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        ctrl.maybe_recompute(usec(2750))  # far beyond several epochs
        assert ctrl.next_epoch_ns() == usec(3000)

    def test_mean_allocated_initial_rate(self, torus2d):
        ctrl = self.make(torus2d, initial_rate_policy="mean_allocated")
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        ctrl.recompute(0)
        mean_rate = ctrl.allocation.rates_bps[1]
        ctrl.on_flow_started(FlowSpec(2, 0, 6), now_ns=10)
        assert ctrl.rate_for(2) == pytest.approx(
            min(torus2d.capacity_bps, mean_rate)
        )

    def test_strawman_mode_recomputes_per_event(self, torus2d):
        ctrl = self.make(torus2d, exempt_young_flows=False)
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        assert ctrl.allocation is not None  # recomputed immediately

    def test_demand_caps_rate(self, torus2d):
        ctrl = self.make(torus2d)
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        ctrl.on_demand_update(1, 1e9)
        assert ctrl.rate_for(1) == pytest.approx(1e9)

    def test_unknown_flow_raises(self, torus2d):
        ctrl = self.make(torus2d)
        with pytest.raises(CongestionControlError):
            ctrl.rate_for(77)

    def test_local_rates_only_own_flows(self, torus2d):
        ctrl = self.make(torus2d)
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        ctrl.on_flow_started(FlowSpec(2, 3, 5), now_ns=0)
        assert set(ctrl.local_rates()) == {1}

    def test_stats_recorded(self, torus2d):
        ctrl = self.make(torus2d)
        ctrl.on_flow_started(FlowSpec(1, 0, 5), now_ns=0)
        ctrl.recompute(usec(500))
        assert len(ctrl.stats) == 1
        stat = ctrl.stats[0]
        assert stat.n_flows == 1
        assert stat.duration_ns > 0
        assert stat.cpu_overhead == stat.duration_ns / usec(500)


class TestDemandEstimator:
    def test_equation_one(self):
        # d[i+1] = r[i] + q[i]/T with alpha=1 (no smoothing).
        est = DemandEstimator(period_ns=1_000_000, ewma_alpha=1.0)
        # 1 Gbps allocated, 125 KB queued over 1 ms -> +1 Gbps.
        value = est.observe(1e9, 125_000)
        assert value == pytest.approx(2e9)

    def test_ewma_smoothing(self):
        est = DemandEstimator(period_ns=1_000_000, ewma_alpha=0.5)
        est.observe(2e9, 0)
        value = est.observe(0.0, 0)
        assert value == pytest.approx(1e9)

    def test_should_broadcast_when_below_allocation(self):
        est = DemandEstimator(period_ns=1_000_000)
        est.observe(1e9, 0)  # demand ~1 Gbps
        assert est.should_broadcast(current_allocation_bps=5e9)
        est.mark_broadcast()
        assert not est.should_broadcast(current_allocation_bps=5e9)

    def test_no_broadcast_when_demand_exceeds_allocation(self):
        est = DemandEstimator(period_ns=1_000_000)
        est.observe(5e9, 10_000_000)
        assert not est.should_broadcast(current_allocation_bps=1e9)

    def test_broadcast_when_demand_recovers(self):
        est = DemandEstimator(period_ns=1_000_000, ewma_alpha=1.0)
        est.observe(1e9, 0)
        est.mark_broadcast()
        est.observe(8e9, 0)
        assert est.should_broadcast(current_allocation_bps=2e9)

    def test_validation(self):
        with pytest.raises(CongestionControlError):
            DemandEstimator(period_ns=0)
        with pytest.raises(CongestionControlError):
            DemandEstimator(period_ns=1, ewma_alpha=0.0)
        est = DemandEstimator(period_ns=1000)
        with pytest.raises(CongestionControlError):
            est.observe(-1.0, 0)


class TestWeightProviderCache:
    def test_memoization(self, torus2d):
        provider = WeightProvider(torus2d)
        spec = FlowSpec(1, 0, 5, "rps")
        first = provider.weights_for(spec)
        second = provider.weights_for(spec)
        assert first is second
        assert provider.cache_size() == 1

    def test_ecmp_keyed_by_flow(self, torus2d):
        provider = WeightProvider(torus2d)
        provider.weights_for(FlowSpec(1, 0, 10, "ecmp"))
        provider.weights_for(FlowSpec(2, 0, 10, "ecmp"))
        assert provider.cache_size() == 2

    def test_memory_footprint_positive(self, torus2d):
        provider = WeightProvider(torus2d)
        provider.weights_for(FlowSpec(1, 0, 5, "rps"))
        assert provider.memory_footprint_bytes() > 0

    def test_paper_6mb_footprint_claim_scaled(self, torus2d):
        # §4.2 estimates < 6 MB per protocol for 512 nodes; check the same
        # arithmetic holds at our scale: entries are (link, weight) pairs.
        provider = WeightProvider(torus2d)
        for dst in range(1, torus2d.n_nodes):
            provider.weights_for(FlowSpec(dst, 0, dst, "rps"))
        # 15 destinations, a handful of links each, 16 bytes per entry.
        assert provider.memory_footprint_bytes() < 6 * 1024 * 1024
