"""Tests for FlowSpec/FlowTable and allocation policies."""

import math

import pytest

from repro.congestion import (
    DeadlinePriority,
    FlowSpec,
    FlowTable,
    PerFlowFair,
    StaticWeights,
    TenantShares,
    normalize_weights,
)
from repro.errors import CongestionControlError


class TestFlowSpec:
    def test_validation(self):
        with pytest.raises(CongestionControlError):
            FlowSpec(1, 0, 1, weight=0)
        with pytest.raises(CongestionControlError):
            FlowSpec(1, 0, 1, priority=-1)
        with pytest.raises(CongestionControlError):
            FlowSpec(1, 0, 1, demand_bps=0)

    def test_immutable_updates(self):
        spec = FlowSpec(1, 0, 1)
        updated = spec.with_demand(5e9)
        assert updated.demand_bps == 5e9
        assert math.isinf(spec.demand_bps)
        assert spec.with_protocol("vlb").protocol == "vlb"


class TestFlowTable:
    def test_add_remove(self):
        table = FlowTable()
        table.add(FlowSpec(1, 0, 1))
        assert 1 in table
        assert len(table) == 1
        assert table.remove(1)
        assert not table.remove(1)  # idempotent
        assert len(table) == 0

    def test_generation_bumps(self):
        table = FlowTable()
        g0 = table.generation
        table.add(FlowSpec(1, 0, 1))
        g1 = table.generation
        table.update_demand(1, 1e9)
        g2 = table.generation
        assert g0 < g1 < g2

    def test_update_unknown_flow(self):
        table = FlowTable()
        assert not table.update_demand(9, 1e9)
        assert not table.update_protocol(9, "vlb")

    def test_reannounce_overwrites(self):
        table = FlowTable()
        table.add(FlowSpec(1, 0, 1, weight=1.0))
        table.add(FlowSpec(1, 0, 1, weight=2.0))
        assert len(table) == 1
        assert table.get(1).weight == 2.0

    def test_flows_from(self):
        table = FlowTable()
        table.add(FlowSpec(1, 0, 1))
        table.add(FlowSpec(2, 0, 2))
        table.add(FlowSpec(3, 1, 2))
        assert {s.flow_id for s in table.flows_from(0)} == {1, 2}

    def test_snapshot_sorted(self):
        table = FlowTable()
        table.add(FlowSpec(5, 0, 1))
        table.add(FlowSpec(2, 0, 1))
        assert [s.flow_id for s in table.snapshot()] == [2, 5]

    def test_protocol_update(self):
        table = FlowTable()
        table.add(FlowSpec(1, 0, 1, protocol="rps"))
        assert table.update_protocol(1, "vlb")
        assert table.get(1).protocol == "vlb"


class TestPolicies:
    def test_per_flow_fair(self):
        spec = FlowSpec(1, 0, 1, weight=5.0, priority=3)
        out = PerFlowFair().apply(spec)
        assert out.weight == 1.0 and out.priority == 0

    def test_static_weights(self):
        policy = StaticWeights({1: 4.0}, default=2.0)
        assert policy.apply(FlowSpec(1, 0, 1)).weight == 4.0
        assert policy.apply(FlowSpec(2, 0, 1)).weight == 2.0

    def test_static_weights_validation(self):
        with pytest.raises(CongestionControlError):
            StaticWeights({1: -1.0})

    def test_tenant_shares_divide_by_flow_count(self):
        policy = TenantShares({"a": 4.0, "b": 2.0})
        specs = [
            FlowSpec(1, 0, 1, tenant="a"),
            FlowSpec(2, 0, 2, tenant="a"),
            FlowSpec(3, 1, 2, tenant="b"),
        ]
        out = policy.apply_all(specs)
        # Tenant a's 4.0 split over two flows; tenant b's 2.0 over one.
        assert out[0].weight == pytest.approx(2.0)
        assert out[1].weight == pytest.approx(2.0)
        assert out[2].weight == pytest.approx(2.0)

    def test_tenant_aggregate_fairness_on_shared_link(self, fig4_topology):
        # Chatty tenant a opens 3 flows, tenant b one flow, all over the
        # same link; shares 1:1 means the tenants' aggregates stay equal.
        from repro.congestion import WeightProvider, waterfill
        from repro.routing.static import StaticPathSet

        static = StaticPathSet(fig4_topology)
        static.set_paths(1, 3, [[1, 2, 3]])
        provider = WeightProvider(fig4_topology, {"static": static})
        policy = TenantShares({"a": 1.0, "b": 1.0})
        specs = policy.apply_all(
            [
                FlowSpec(1, 1, 3, "static", tenant="a"),
                FlowSpec(2, 1, 3, "static", tenant="a"),
                FlowSpec(3, 1, 3, "static", tenant="a"),
                FlowSpec(4, 1, 3, "static", tenant="b"),
            ]
        )
        alloc = waterfill(fig4_topology, specs, provider)
        tenant_a = sum(alloc.rates_bps[i] for i in (1, 2, 3))
        tenant_b = alloc.rates_bps[4]
        assert tenant_a == pytest.approx(tenant_b)

    def test_deadline_priority_levels(self):
        policy = DeadlinePriority()
        deadline_flow = policy.apply(
            FlowSpec(1, 0, 1),
            remaining_bytes=1_000_000,
            deadline_ns=2_000_000,
            now_ns=0,
        )
        best_effort = policy.apply(FlowSpec(2, 0, 1))
        assert deadline_flow.priority < best_effort.priority
        # Required rate: 1 MB over 2 ms = 4 Gbps.
        assert deadline_flow.weight == pytest.approx(4e9)

    def test_tight_deadline_gets_more_weight(self):
        policy = DeadlinePriority()
        tight = policy.apply(
            FlowSpec(1, 0, 1), remaining_bytes=1000, deadline_ns=100, now_ns=0
        )
        loose = policy.apply(
            FlowSpec(2, 0, 1), remaining_bytes=1000, deadline_ns=100000, now_ns=0
        )
        assert tight.weight > loose.weight

    def test_normalize_weights(self):
        specs = [FlowSpec(1, 0, 1, weight=10.0), FlowSpec(2, 0, 1, weight=30.0)]
        out = normalize_weights(specs)
        assert sum(s.weight for s in out) == pytest.approx(len(out))
        assert out[1].weight / out[0].weight == pytest.approx(3.0)

    def test_normalize_empty(self):
        assert normalize_weights([]) == []
