"""derive_seed: deterministic, 64-bit, process-stable substream derivation."""

import subprocess
import sys

from hypothesis import given
from hypothesis import strategies as st

from repro.core import SEED_MASK, derive_seed

key_parts = st.lists(
    st.one_of(
        st.integers(min_value=-(2**63), max_value=2**63),
        st.text(max_size=20),
        st.floats(allow_nan=False),
        st.booleans(),
        st.none(),
    ),
    max_size=4,
)


def test_no_parts_is_identity():
    # Existing call sites seed random.Random(seed) directly; routing them
    # through derive_seed must keep their exact historical streams.
    for seed in (0, 7, 18, 2**63, -3):
        assert derive_seed(seed) == seed


@given(st.integers(min_value=0, max_value=2**64), key_parts)
def test_deterministic_and_64bit(root, parts):
    a = derive_seed(root, *parts)
    b = derive_seed(root, *parts)
    assert a == b
    if parts:
        assert 0 <= a <= SEED_MASK


@given(st.integers(min_value=0, max_value=2**32))
def test_distinct_across_parts_and_order(root):
    assert derive_seed(root, "a", "b") != derive_seed(root, "b", "a")
    assert derive_seed(root, "a") != derive_seed(root, "b")
    assert derive_seed(root, "a") != derive_seed(root + 1, "a")


def test_structured_parts_are_order_insensitive_for_mappings():
    assert derive_seed(1, {"x": 1, "y": 2}) == derive_seed(1, {"y": 2, "x": 1})


def test_known_vector_stable_across_processes():
    """The same derivation in a fresh interpreter yields the same seed
    (unlike hash(), which is salted per process)."""
    expected = derive_seed(7, "fig02", "rps/uniform", 0)
    code = (
        "from repro.core import derive_seed;"
        "print(derive_seed(7, 'fig02', 'rps/uniform', 0))"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": ":".join(sys.path), "PYTHONHASHSEED": "random"},
    )
    assert int(out.stdout.strip()) == expected
