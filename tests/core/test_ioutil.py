"""Atomic-write helpers: write → fsync → rename semantics."""

import json
import os

import pytest

from repro.core import atomic_write_bytes, atomic_write_json, atomic_write_text


def test_writes_bytes(tmp_path):
    path = tmp_path / "out.bin"
    atomic_write_bytes(path, b"\x00\x01payload")
    assert path.read_bytes() == b"\x00\x01payload"


def test_overwrites_existing(tmp_path):
    path = tmp_path / "out.txt"
    path.write_text("old")
    atomic_write_text(path, "new")
    assert path.read_text() == "new"


def test_creates_parent_directories(tmp_path):
    path = tmp_path / "a" / "b" / "c.txt"
    atomic_write_text(path, "deep")
    assert path.read_text() == "deep"


def test_no_temporary_leftovers(tmp_path):
    path = tmp_path / "out.txt"
    for i in range(5):
        atomic_write_text(path, f"generation {i}")
    assert os.listdir(tmp_path) == ["out.txt"]


def test_failure_leaves_original_intact(tmp_path):
    path = tmp_path / "out.json"
    atomic_write_json(path, {"ok": 1})
    before = path.read_bytes()

    class Unserializable:
        pass

    with pytest.raises(TypeError):
        atomic_write_json(path, {"bad": Unserializable()})
    assert path.read_bytes() == before
    assert os.listdir(tmp_path) == ["out.json"]


def test_midwrite_failure_cleans_temp_and_keeps_original(tmp_path, monkeypatch):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "original")

    def broken_replace(src, dst):
        raise OSError("simulated rename failure")

    monkeypatch.setattr(os, "replace", broken_replace)
    with pytest.raises(OSError, match="simulated rename failure"):
        atomic_write_text(path, "replacement")
    monkeypatch.undo()
    assert path.read_text() == "original"
    assert os.listdir(tmp_path) == ["out.txt"]


def test_json_sorted_and_stable(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    atomic_write_json(a, {"z": 1, "a": [2, 3]})
    atomic_write_json(b, {"a": [2, 3], "z": 1})
    assert a.read_bytes() == b.read_bytes()
    assert json.loads(a.read_text()) == {"a": [2, 3], "z": 1}
    assert a.read_text().endswith("\n")
