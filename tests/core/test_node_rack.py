"""Tests for the per-node control plane and the Rack facade."""

import math

import pytest

from repro.core import R2C2Config, Rack
from repro.errors import ReproError
from repro.types import usec


class TestRackFlows:
    def test_tables_converge(self, torus2d):
        rack = Rack(torus2d)
        rack.start_flow(0, 5)
        rack.start_flow(3, 9, protocol="vlb", weight=2.0)
        assert rack.tables_consistent()
        assert len(rack.active_flows()) == 2

    def test_rates_respect_weights(self, torus2d):
        rack = Rack(torus2d)
        a = rack.start_flow(0, 5, weight=1.0)
        b = rack.start_flow(0, 5, weight=3.0)
        rack.recompute_all()
        rates = rack.rates()
        assert rates[b] / rates[a] == pytest.approx(3.0)

    def test_finish_removes_everywhere(self, torus2d):
        rack = Rack(torus2d)
        fid = rack.start_flow(0, 5)
        rack.finish_flow(fid)
        assert rack.tables_consistent()
        assert rack.active_flows() == []

    def test_self_flow_rejected(self, torus2d):
        with pytest.raises(ReproError):
            Rack(torus2d).start_flow(2, 2)

    def test_unknown_flow_rejected(self, torus2d):
        with pytest.raises(ReproError):
            Rack(torus2d).finish_flow(99)

    def test_demand_update_propagates(self, torus2d):
        rack = Rack(torus2d)
        fid = rack.start_flow(0, 5)
        rack.update_demand(fid, 1e9)
        for node in rack.nodes:
            assert node.controller.table.get(fid).demand_bps == pytest.approx(1e9)
        rack.recompute_all()
        assert rack.rate_of(fid) == pytest.approx(1e9)

    def test_weight_quantization_consistent(self, torus2d):
        # Weights cross the wire as sixteenths; every node (including the
        # sender, which keeps the exact value) must compute the same rates,
        # so the wire round-trip must be lossless for representable values.
        rack = Rack(torus2d)
        fid = rack.start_flow(0, 5, weight=2.5)
        views = {node.controller.table.get(fid).weight for node in rack.nodes}
        assert views == {2.5}

    def test_control_bytes_accounted(self, torus2d):
        rack = Rack(torus2d)
        rack.start_flow(0, 5)
        assert rack.control_bytes_on_wire == 15 * 16


class TestEpochs:
    def test_advance_time_triggers_epochs(self, torus2d):
        rack = Rack(torus2d, R2C2Config(recompute_interval_ns=usec(100)))
        fid = rack.start_flow(0, 5)
        allocations = rack.advance_time(usec(100))
        assert len(allocations) == torus2d.n_nodes
        assert rack.rate_of(fid) > 0

    def test_no_epoch_before_interval(self, torus2d):
        rack = Rack(torus2d, R2C2Config(recompute_interval_ns=usec(100)))
        rack.start_flow(0, 5)
        assert rack.advance_time(usec(50)) == []

    def test_time_cannot_reverse(self, torus2d):
        with pytest.raises(ReproError):
            Rack(torus2d).advance_time(-1)


class TestRouteSelection:
    def test_selection_improves_contended_workload(self, torus2d):
        rack = Rack(torus2d)
        # Several flows converging on node 5 — minimal routing collides.
        for src in (0, 1, 2, 4):
            rack.start_flow(src, 5)
        before = rack.recompute_all().aggregate_throughput_bps()
        improvement = rack.select_routes()
        after = rack.recompute_all().aggregate_throughput_bps()
        assert rack.tables_consistent()
        if improvement > 0:
            assert after > before

    def test_no_flows_is_noop(self, torus2d):
        assert Rack(torus2d).select_routes() == 0.0

    def test_protocol_updates_propagate(self, torus2d):
        rack = Rack(torus2d)
        for src in (0, 1, 2, 4):
            rack.start_flow(src, 5)
        rack.select_routes(min_improvement=0.0)
        protocols = [
            tuple(s.protocol for s in node.controller.table.snapshot())
            for node in rack.nodes
        ]
        assert len(set(protocols)) == 1  # every node agrees


class TestFailures:
    def test_reannounce_after_link_failure(self, torus2d):
        rack = Rack(torus2d)
        rack.start_flow(0, 5)
        rack.start_flow(3, 9)
        count = rack.inject_link_failure(1, 2)
        assert count == 2  # one re-announce per ongoing flow
        assert rack.tables_consistent()

    def test_failure_recorded_everywhere(self, torus2d):
        rack = Rack(torus2d)
        rack.inject_link_failure(0, 1)
        for node in rack.nodes:
            assert (0, 1) in node.failure_recovery.failed_links


class TestNodeWire:
    def test_start_flow_emits_valid_broadcast(self, torus2d):
        from repro.wire import BroadcastPacket, EVENT_FLOW_START

        rack = Rack(torus2d)
        packet_bytes = rack.nodes[0].start_flow(42, 5, protocol="vlb", weight=2.0)
        packet = BroadcastPacket.decode(packet_bytes)
        assert packet.event == EVENT_FLOW_START
        assert packet.flow_id == 42
        assert packet.src == 0 and packet.dst == 5
        assert packet.protocol_id == 2  # vlb
        assert math.isinf(packet.demand_bps)

    def test_own_broadcast_echo_ignored(self, torus2d):
        rack = Rack(torus2d)
        node = rack.nodes[0]
        data = node.start_flow(1, 5)
        before = node.controller.table.generation
        node.handle_broadcast(data)  # echo back to the sender
        assert node.controller.table.generation == before

    def test_finish_requires_local_flow(self, torus2d):
        rack = Rack(torus2d)
        rack.start_flow(0, 5)
        with pytest.raises(ReproError):
            rack.nodes[3].finish_flow(0)  # node 3 is not the sender
