"""Remaining core-package behaviours: config validation, selection with a
wider protocol set, and utilization accounting."""

import pytest

from repro.analysis import max_channel_utilization
from repro.core import R2C2Config, Rack
from repro.errors import ReproError
from repro.routing import RandomPacketSpraying
from repro.selection import SelectionProblem, uniform_baseline
from repro.congestion import FlowSpec
from repro.types import usec
from repro.workloads import UniformPattern


class TestR2C2Config:
    def test_defaults(self):
        cfg = R2C2Config()
        assert cfg.headroom == 0.05
        assert cfg.recompute_interval_ns == usec(500)
        assert cfg.default_protocol == "rps"
        assert cfg.selection_protocols == ("rps", "vlb")

    def test_validation(self):
        with pytest.raises(ReproError):
            R2C2Config(n_broadcast_trees=0)
        with pytest.raises(ReproError):
            R2C2Config(selection_protocols=())

    def test_controller_config_derivation(self):
        cfg = R2C2Config(headroom=0.1, recompute_interval_ns=usec(100))
        derived = cfg.controller_config()
        assert derived.headroom == 0.1
        assert derived.recompute_interval_ns == usec(100)


class TestWiderSelection:
    def test_three_protocol_selection(self, torus2d):
        flows = [
            FlowSpec(i, i, (i + 5) % 16, protocol="rps") for i in range(6)
        ]
        problem = SelectionProblem(
            torus2d, flows, protocols=("rps", "vlb", "dor")
        )
        assert problem.n_choices == 3
        results = {
            name: uniform_baseline(problem, name).utility
            for name in ("rps", "vlb", "dor")
        }
        assert all(v > 0 for v in results.values())
        # DOR is single-path(ish): it cannot beat spraying here.
        assert results["rps"] >= results["dor"]

    def test_unknown_current_protocol_defaults_to_first(self, torus2d):
        flows = [FlowSpec(0, 0, 5, protocol="ecmp")]  # not a candidate
        problem = SelectionProblem(torus2d, flows, protocols=("rps", "vlb"))
        assert problem.current_assignment() == (0,)

    def test_rack_selection_with_three_protocols(self, torus2d):
        rack = Rack(
            torus2d, R2C2Config(selection_protocols=("rps", "vlb", "wlb"))
        )
        for src in (0, 1, 2):
            rack.start_flow(src, 5)
        rack.select_routes(min_improvement=0.0)
        assert rack.tables_consistent()
        protocols = {s.protocol for s in rack.active_flows()}
        assert protocols <= {"rps", "vlb", "wlb"}


class TestUtilizationAccounting:
    def test_max_channel_utilization(self, torus2d):
        rps = RandomPacketSpraying(torus2d)
        matrix = UniformPattern().matrix(torus2d)
        # At the saturation injection rate, utilization is exactly 1.
        from repro.analysis import saturation_throughput

        theta = saturation_throughput(rps, matrix)
        util = max_channel_utilization(
            rps, matrix, injection_bps=theta * torus2d.capacity_bps
        )
        assert util == pytest.approx(1.0)

    def test_half_rate_gives_half_utilization(self, torus2d):
        rps = RandomPacketSpraying(torus2d)
        matrix = UniformPattern().matrix(torus2d)
        full = max_channel_utilization(rps, matrix, torus2d.capacity_bps)
        half = max_channel_utilization(rps, matrix, torus2d.capacity_bps / 2)
        assert half == pytest.approx(full / 2)


class TestRackEdgeBehaviours:
    def test_many_flows_same_pair(self, torus2d):
        rack = Rack(torus2d)
        ids = [rack.start_flow(0, 5) for _ in range(5)]
        rack.recompute_all()
        rates = [rack.rate_of(fid) for fid in ids]
        # Same pair, same protocol: identical fair rates.
        assert max(rates) - min(rates) < 1e-6

    def test_flow_ids_monotonic(self, torus2d):
        rack = Rack(torus2d)
        a = rack.start_flow(0, 5)
        rack.finish_flow(a)
        b = rack.start_flow(0, 5)
        assert b > a  # ids are never reused

    def test_advance_time_multiple_epochs(self, torus2d):
        rack = Rack(torus2d, R2C2Config(recompute_interval_ns=usec(100)))
        rack.start_flow(0, 5)
        allocations = rack.advance_time(usec(1000))
        # One allocation per node for the *due* recomputation (epochs are
        # not replayed one by one; the controller skips ahead).
        assert len(allocations) == torus2d.n_nodes
