"""Public-API hygiene: everything advertised in ``__all__`` exists, every
public item carries a docstring, and subpackage imports are cycle-free."""

import importlib
import inspect

import pytest

SUBPACKAGES = (
    "repro",
    "repro.analysis",
    "repro.broadcast",
    "repro.congestion",
    "repro.core",
    "repro.distsim",
    "repro.experiments",
    "repro.fuzz",
    "repro.interrack",
    "repro.maze",
    "repro.obs",
    "repro.routing",
    "repro.selection",
    "repro.service",
    "repro.sim",
    "repro.telemetry",
    "repro.topology",
    "repro.transport",
    "repro.validation",
    "repro.wire",
    "repro.workloads",
)


@pytest.mark.parametrize("name", SUBPACKAGES)
class TestPublicSurface:
    def test_imports_cleanly(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    def test_all_entries_exist(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"

    def test_public_items_documented(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


class TestVersionAndErrors:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_error_hierarchy(self):
        import repro

        for name in (
            "TopologyError",
            "RoutingError",
            "CongestionControlError",
            "BroadcastError",
            "WireFormatError",
            "SimulationError",
            "EmulationError",
            "SelectionError",
        ):
            error_cls = getattr(repro, name)
            assert issubclass(error_cls, repro.ReproError)

    def test_public_class_methods_documented(self):
        # Spot-check the flagship classes: all public methods documented.
        from repro.congestion import RateController
        from repro.core import Rack
        from repro.sim import SimMetrics

        for cls in (Rack, RateController, SimMetrics):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member):
                    assert member.__doc__, f"{cls.__name__}.{name} lacks a docstring"
