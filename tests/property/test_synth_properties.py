"""Property-based tests (hypothesis) for fabric synthesis invariants."""

from collections import deque

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.topology import FabricSpec, synthesize

pytestmark = pytest.mark.synth

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _flat_spec(n_racks, ports, seed):
    return FabricSpec(
        design="flat",
        rack="torus",
        rack_dims=(2, 2),
        n_racks=n_racks,
        gateway_ports=ports,
        seed=seed,
    )


def _connected(topology):
    seen = {0}
    frontier = deque([0])
    while frontier:
        node = frontier.popleft()
        for peer in topology.neighbors(node):
            if peer not in seen:
                seen.add(peer)
                frontier.append(peer)
    return len(seen) == topology.n_nodes


class TestFlatDesign:
    @given(
        n_racks=st.integers(min_value=3, max_value=10),
        ports=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(**_SETTINGS)
    def test_port_budget_and_connectivity(self, n_racks, ports, seed):
        assume(ports < n_racks and (n_racks * ports) % 2 == 0)
        fabric = synthesize(_flat_spec(n_racks, ports, seed))
        # Port budget: every rack uses exactly its gateway-port budget.
        per_rack = [0] * n_racks
        for rack_a, _la, rack_b, _lb in fabric.bridges:
            per_rack[rack_a] += 1
            per_rack[rack_b] += 1
        assert all(used <= ports for used in per_rack)
        assert fabric.report["gateway_ports_per_rack"] <= ports
        assert fabric.report["budget_ok"] is True
        assert _connected(fabric.topology)

    @given(
        n_racks=st.integers(min_value=3, max_value=8),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(**_SETTINGS)
    def test_node_id_arithmetic_matches_multirack(self, n_racks, seed):
        assume(n_racks % 2 == 0 or True)
        assume((n_racks * 2) % 2 == 0)
        fabric = synthesize(_flat_spec(n_racks, 2, seed))
        topo = fabric.topology
        rack_size = topo.rack_size
        for node in topo.nodes():
            rack, local = divmod(node, rack_size)
            assert topo.rack_of(node) == rack
            assert topo.local_id(node) == local
            assert topo.global_id(rack, local) == node

    @given(
        n_racks=st.integers(min_value=3, max_value=8),
        ports=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(**_SETTINGS)
    def test_fingerprints_byte_stable(self, n_racks, ports, seed):
        assume(ports < n_racks and (n_racks * ports) % 2 == 0)
        first = synthesize(_flat_spec(n_racks, ports, seed))
        second = synthesize(_flat_spec(n_racks, ports, seed))
        assert first.spec.fingerprint() == second.spec.fingerprint()
        assert first.fingerprint == second.fingerprint
        assert first.bridges == second.bridges


class TestFatTreeDesign:
    @given(
        n_racks=st.integers(min_value=2, max_value=10),
        radix=st.integers(min_value=4, max_value=16),
        seed=st.integers(min_value=0, max_value=99),
    )
    @settings(**_SETTINGS)
    def test_budgets_respected(self, n_racks, radix, seed):
        spec = FabricSpec(
            design="fattree",
            rack="torus",
            rack_dims=(2, 2),
            n_racks=n_racks,
            gateway_ports=2,
            oversubscription=1e9,
            switch_radix=radix,
            seed=seed,
        )
        fabric = synthesize(spec)
        report = fabric.report
        assert report["gateway_ports_per_rack"] <= spec.gateway_ports
        assert report["cost"] == pytest.approx(
            report["switches"] * spec.switch_cost
            + report["cables"] * spec.cable_cost
        )
        assert _connected(fabric.topology)

    @given(max_cost=st.floats(min_value=100.0, max_value=2000.0))
    @settings(**_SETTINGS)
    def test_cost_ceiling_never_exceeded(self, max_cost):
        spec = FabricSpec(
            design="fattree",
            rack="torus",
            rack_dims=(2, 2),
            n_racks=4,
            gateway_ports=2,
            oversubscription=1e9,
            max_cost=max_cost,
        )
        try:
            fabric = synthesize(spec)
        except Exception:
            return  # budget infeasible: rejection is the contract
        assert fabric.report["cost"] <= max_cost
