"""Property-based tests (hypothesis) on core invariants."""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congestion import FlowSpec, WeightProvider, waterfill
from repro.routing import spray_link_weights
from repro.routing.ecmp import EcmpSinglePath
from repro.topology import TorusTopology, count_shortest_paths, is_minimal_path
from repro.wire import BroadcastPacket, DataPacket, pack_route, unpack_route
from repro.wire.packets import EVENT_FLOW_FINISH, EVENT_FLOW_START

# Shared small topology: hypothesis runs many examples, keep each cheap.
_TOPO = TorusTopology((4, 4))
_PROVIDER = WeightProvider(_TOPO)

node_ids = st.integers(min_value=0, max_value=_TOPO.n_nodes - 1)


class TestTopologyProperties:
    @given(src=node_ids, dst=node_ids)
    @settings(max_examples=60, deadline=None)
    def test_distance_symmetry_and_triangle(self, src, dst):
        d = _TOPO.distance(src, dst)
        assert d == _TOPO.distance(dst, src)
        assert (d == 0) == (src == dst)
        for mid in (0, 5, 10):
            assert d <= _TOPO.distance(src, mid) + _TOPO.distance(mid, dst)

    @given(src=node_ids, dst=node_ids)
    @settings(max_examples=40, deadline=None)
    def test_path_count_positive_and_consistent(self, src, dst):
        count = count_shortest_paths(_TOPO, src, dst)
        assert count >= 1
        # Symmetric topology: reverse direction has the same count.
        assert count == count_shortest_paths(_TOPO, dst, src)


class TestRoutingProperties:
    @given(src=node_ids, dst=node_ids)
    @settings(max_examples=40, deadline=None)
    def test_spray_weights_conservation(self, src, dst):
        if src == dst:
            return
        weights = spray_link_weights(_TOPO, src, dst)
        assert all(0 <= w <= 1 + 1e-9 for w in weights.values())
        assert sum(weights.values()) == pytest.approx(_TOPO.distance(src, dst))
        out_of_src = sum(
            w for link, w in weights.items() if _TOPO.links[link].src == src
        )
        assert out_of_src == pytest.approx(1.0)

    @given(src=node_ids, dst=node_ids, flow_id=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_ecmp_deterministic_minimal(self, src, dst, flow_id):
        if src == dst:
            return
        ecmp = EcmpSinglePath(_TOPO)
        path = ecmp.flow_path(src, dst, flow_id)
        assert is_minimal_path(_TOPO, path)
        assert path == ecmp.flow_path(src, dst, flow_id)


class TestWaterfillProperties:
    @given(
        seeds=st.integers(0, 10**6),
        n_flows=st.integers(1, 12),
        headroom=st.floats(0.0, 0.3),
    )
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_feasibility_and_positivity(self, seeds, n_flows, headroom):
        rng = random.Random(seeds)
        flows = []
        for i in range(n_flows):
            src = rng.randrange(_TOPO.n_nodes)
            dst = rng.randrange(_TOPO.n_nodes - 1)
            if dst >= src:
                dst += 1
            flows.append(
                FlowSpec(
                    i,
                    src,
                    dst,
                    protocol=rng.choice(["rps", "dor", "vlb"]),
                    weight=rng.choice([0.5, 1.0, 2.0]),
                )
            )
        alloc = waterfill(_TOPO, flows, _PROVIDER, headroom=headroom)
        # Feasibility: no link above its adjusted capacity.
        assert (
            alloc.link_load_bps <= alloc.link_capacity_bps * (1 + 1e-6)
        ).all()
        # No starvation under per-flow weights.
        assert all(r > 0 for r in alloc.rates_bps.values())

    @given(seeds=st.integers(0, 10**6), scale=st.floats(0.1, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_weight_scale_invariance(self, seeds, scale):
        rng = random.Random(seeds)
        flows = [
            FlowSpec(i, i, (i + 5) % 16, "rps", weight=1.0 + (i % 3))
            for i in range(6)
        ]
        scaled = [
            FlowSpec(
                f.flow_id, f.src, f.dst, f.protocol, weight=f.weight * scale
            )
            for f in flows
        ]
        a = waterfill(_TOPO, flows, _PROVIDER)
        b = waterfill(_TOPO, scaled, _PROVIDER)
        for fid in a.rates_bps:
            assert a.rates_bps[fid] == pytest.approx(b.rates_bps[fid], rel=1e-6)


class TestWireProperties:
    @given(
        ports=st.lists(st.integers(0, 7), min_size=0, max_size=42),
    )
    @settings(max_examples=100, deadline=None)
    def test_route_roundtrip(self, ports):
        assert unpack_route(pack_route(ports), len(ports)) == ports

    @given(
        flow_id=st.integers(0, 2**32 - 1),
        src=st.integers(0, 2**16 - 1),
        dst=st.integers(0, 2**16 - 1),
        seq=st.integers(0, 2**32 - 1),
        payload=st.binary(max_size=200),
        ridx=st.integers(0, 3),
    )
    @settings(max_examples=80, deadline=None)
    def test_data_packet_roundtrip(self, flow_id, src, dst, seq, payload, ridx):
        packet = DataPacket(
            flow_id=flow_id,
            src=src,
            dst=dst,
            seq=seq,
            route_ports=(1, 2, 3),
            route_index=ridx,
            payload=payload,
        )
        assert DataPacket.decode(packet.encode()) == packet

    @given(
        event=st.sampled_from([EVENT_FLOW_START, EVENT_FLOW_FINISH]),
        src=st.integers(0, 2**16 - 1),
        dst=st.integers(0, 2**16 - 1),
        flow_id=st.integers(0, 2**32 - 1),
        weight_q=st.integers(1, 255),
        priority=st.integers(0, 255),
        demand_mbps=st.one_of(st.none(), st.integers(0, (1 << 24) - 2)),
        tree=st.integers(0, 15),
        rp=st.integers(0, 15),
    )
    @settings(max_examples=80, deadline=None)
    def test_broadcast_roundtrip(
        self, event, src, dst, flow_id, weight_q, priority, demand_mbps, tree, rp
    ):
        packet = BroadcastPacket(
            event=event,
            src=src,
            dst=dst,
            flow_id=flow_id,
            weight=weight_q / 16.0,
            priority=priority,
            demand_bps=math.inf if demand_mbps is None else demand_mbps * 1e6,
            tree_id=tree,
            protocol_id=rp,
        )
        decoded = BroadcastPacket.decode(packet.encode())
        assert decoded == packet

    @given(data=st.binary(min_size=16, max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_random_bytes_never_misparse_silently(self, data):
        # Either it parses as a broadcast (type+checksum happen to match) or
        # it raises WireFormatError — never an unrelated exception.
        from repro.errors import WireFormatError

        try:
            BroadcastPacket.decode(data)
        except WireFormatError:
            pass
