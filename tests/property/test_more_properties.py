"""Additional property-based suites: broadcast trees, water-fill with
priorities/demands, ring buffers, reliability transport."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.broadcast import build_broadcast_tree
from repro.congestion import FlowSpec, WeightProvider, waterfill
from repro.maze import DataRingBuffer
from repro.topology import TorusTopology
from repro.transport import AckInfo, ReliableReceiver, ReliableSender

_TOPO = TorusTopology((4, 4))
_PROVIDER = WeightProvider(_TOPO)


class TestBroadcastTreeProperties:
    @given(root=st.integers(0, 15), seed=st.integers(0, 1000), tree_id=st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_trees_always_optimal_spanning(self, root, seed, tree_id):
        tree = build_broadcast_tree(_TOPO, root, tree_id=tree_id, seed=seed)
        assert tree.covers_all()
        assert tree.n_edges() == _TOPO.n_nodes - 1
        assert tree.is_shortest_path_tree()
        assert tree.depth() == max(_TOPO.distances_from(root))


class TestWaterfillPriorityProperties:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_priority_dominance(self, seed):
        """Raising a flow to a strictly better priority never lowers its rate."""
        rng = random.Random(seed)
        src = rng.randrange(16)
        dst = (src + rng.randrange(1, 16)) % 16
        others = [
            FlowSpec(i + 1, (src + i + 1) % 16, dst, "rps", priority=1)
            for i in range(4)
        ]
        base = waterfill(
            _TOPO, [FlowSpec(0, src, dst, "rps", priority=1), *others], _PROVIDER
        )
        promoted = waterfill(
            _TOPO, [FlowSpec(0, src, dst, "rps", priority=0), *others], _PROVIDER
        )
        assert promoted.rates_bps[0] >= base.rates_bps[0] - 1e-6

    @given(
        seed=st.integers(0, 10**6),
        demand_gbps=st.floats(0.1, 50.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_demand_is_a_hard_cap_and_monotone(self, seed, demand_gbps):
        rng = random.Random(seed)
        src = rng.randrange(16)
        dst = (src + rng.randrange(1, 16)) % 16
        capped = FlowSpec(0, src, dst, "rps", demand_bps=demand_gbps * 1e9)
        free = FlowSpec(1, (src + 3) % 16, dst, "rps")
        alloc = waterfill(_TOPO, [capped, free], _PROVIDER)
        assert alloc.rates_bps[0] <= demand_gbps * 1e9 + 1e-3
        # Removing the cap can only help flow 0 and only hurt flow 1.
        alloc_free = waterfill(
            _TOPO, [FlowSpec(0, src, dst, "rps"), free], _PROVIDER
        )
        assert alloc_free.rates_bps[0] >= alloc.rates_bps[0] - 1e-6
        assert alloc_free.rates_bps[1] <= alloc.rates_bps[1] + 1e-6


class TestRingBufferProperties:
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(1, 64)), min_size=1, max_size=200
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_slot_accounting_never_corrupts(self, ops):
        dr = DataRingBuffer(8, 64)
        live = {}
        for is_write, size in ops:
            if is_write:
                slot = dr.write(b"x" * size)
                if slot is not None:
                    assert slot not in live
                    live[slot] = size
            elif live:
                slot, size = next(iter(live.items()))
                assert len(dr.read(slot)) == size
                dr.free(slot)
                del live[slot]
        assert dr.used_slots == len(live)
        assert dr.used_bytes == sum(live.values())


class TestTransportProperties:
    @given(
        n_segments=st.integers(1, 30),
        loss_seed=st.integers(0, 10**6),
        loss_pct=st.integers(0, 60),
    )
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_always_converges_under_random_loss(self, n_segments, loss_seed, loss_pct):
        rng = random.Random(loss_seed)
        sender = ReliableSender(n_segments, rto_ns=5)
        receiver = ReliableReceiver(n_segments)
        now = 0
        budget = 200 * n_segments
        while not sender.all_acked and now < budget:
            seq = sender.next_segment(now)
            if seq is not None:
                sender.on_sent(seq, now)
                if rng.randrange(100) >= loss_pct:
                    receiver.on_segment(seq)
                    if rng.randrange(100) >= loss_pct:
                        sender.on_ack(receiver.ack_info())
            now += 1
        assert sender.all_acked
        assert receiver.complete

    @given(received=st.sets(st.integers(0, 40), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_ack_info_is_faithful(self, received):
        receiver = ReliableReceiver(41)
        for seq in sorted(received):
            receiver.on_segment(seq)
        ack = receiver.ack_info()
        for seq in range(41):
            claimed = ack.is_received(seq)
            actually = seq in received
            if claimed:
                assert actually
            # The SACK window is finite: segments beyond it may be
            # under-reported but never over-reported.
