"""Focused tests for the Maze R2C2 user-space stack."""

import pytest

from repro.broadcast import BroadcastFib
from repro.congestion.controller import ControllerConfig, RateController
from repro.maze import MazePlatform, MazeR2C2Stack
from repro.sim.flows import SimFlow
from repro.sim.metrics import SimMetrics
from repro.topology import TorusTopology
from repro.types import gbps, usec
from repro.workloads import FlowArrival


@pytest.fixture
def setup():
    topo = TorusTopology((3, 3), capacity_bps=gbps(5))
    fib = BroadcastFib(topo, n_trees=2, seed=0)
    platform = MazePlatform(topo, fib=fib, step_ns=500, slot_bytes=9 * 1024)
    controller = RateController(
        topo, 0, config=ControllerConfig(recompute_interval_ns=usec(100))
    )
    flows = {}
    metrics = SimMetrics()
    stacks = [
        MazeR2C2Stack(n, platform.server(n), controller, fib, flows, 8192, 0, metrics)
        for n in topo.nodes()
    ]
    return topo, platform, controller, flows, stacks, metrics


class TestMazeStack:
    def test_start_flow_announces_and_paces(self, setup):
        topo, platform, controller, flows, stacks, metrics = setup
        flow = SimFlow(FlowArrival(0, 0, 4, 100_000, 0))
        flows[0] = flow
        stacks[0].start_flow(flow, now_ns=0)
        assert controller.table.get(0) is not None

        def drive(now):
            for s in stacks:
                s.set_time_hint(now)
                s.pump(now)

        platform.add_step_hook(drive)
        platform.run_until(lambda: flow.completed, max_ns=5_000_000)
        assert flow.completed
        assert flow.bytes_received == 100_000
        # The finish was announced and the table cleaned up.
        assert controller.table.get(0) is None
        # Broadcast deliveries were counted (start at 8 remote nodes, plus
        # finish).
        assert metrics.broadcast_packets >= 8

    def test_rates_refresh_on_epoch(self, setup):
        topo, platform, controller, flows, stacks, metrics = setup
        flow = SimFlow(FlowArrival(0, 0, 4, 10_000_000, 0))
        flows[0] = flow
        stacks[0].start_flow(flow, now_ns=0)
        controller.recompute(usec(100))
        stacks[0].refresh_rates(usec(100))
        bucket = stacks[0]._buckets[0]
        assert bucket.rate_bps == pytest.approx(controller.rate_for(0))

    def test_wrong_source_rejected(self, setup):
        topo, platform, controller, flows, stacks, metrics = setup
        from repro.errors import EmulationError

        flow = SimFlow(FlowArrival(1, 3, 4, 1000, 0))
        with pytest.raises(EmulationError):
            stacks[0].start_flow(flow, now_ns=0)

    def test_broadcast_bytes_are_wire_accurate(self, setup):
        topo, platform, controller, flows, stacks, metrics = setup
        flow = SimFlow(FlowArrival(0, 0, 4, 10_000, 0))
        flows[0] = flow
        stacks[0].start_flow(flow, now_ns=0)

        def drive(now):
            for s in stacks:
                s.set_time_hint(now)
                s.pump(now)

        platform.add_step_hook(drive)
        platform.run_until(lambda: flow.completed, max_ns=5_000_000)
        # Each broadcast delivery is a real 16-byte packet.
        assert metrics.broadcast_bytes == metrics.broadcast_packets * 16
