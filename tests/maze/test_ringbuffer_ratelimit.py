"""Tests for Maze ring buffers, pointer rings and token buckets."""

import pytest

from repro.errors import EmulationError
from repro.maze import DataRingBuffer, PointerRing, TokenBucket


class TestDataRingBuffer:
    def test_write_read_free(self):
        dr = DataRingBuffer(4, 100)
        slot = dr.write(b"hello")
        assert dr.read(slot) == b"hello"
        assert dr.used_slots == 1
        dr.free(slot)
        assert dr.used_slots == 0

    def test_full_buffer_rejects(self):
        dr = DataRingBuffer(2, 10)
        assert dr.write(b"a") is not None
        assert dr.write(b"b") is not None
        assert dr.write(b"c") is None
        assert dr.write_failures == 1
        assert not dr.has_space()

    def test_oversized_packet_raises(self):
        dr = DataRingBuffer(2, 10)
        with pytest.raises(EmulationError):
            dr.write(b"x" * 11)

    def test_double_free_raises(self):
        dr = DataRingBuffer(2, 10)
        slot = dr.write(b"a")
        dr.free(slot)
        with pytest.raises(EmulationError):
            dr.free(slot)

    def test_read_after_free_raises(self):
        dr = DataRingBuffer(2, 10)
        slot = dr.write(b"a")
        dr.free(slot)
        with pytest.raises(EmulationError):
            dr.read(slot)

    def test_replace_in_place(self):
        dr = DataRingBuffer(2, 10)
        slot = dr.write(b"aaaa")
        dr.replace(slot, b"bbbb")
        assert dr.read(slot) == b"bbbb"

    def test_slot_reuse_after_free(self):
        dr = DataRingBuffer(1, 10)
        slot = dr.write(b"a")
        dr.free(slot)
        assert dr.write(b"b") == slot

    def test_max_used_tracked(self):
        dr = DataRingBuffer(4, 10)
        slots = [dr.write(b"x") for _ in range(3)]
        for s in slots:
            dr.free(s)
        assert dr.max_used == 3

    def test_used_bytes(self):
        dr = DataRingBuffer(4, 10)
        dr.write(b"abc")
        dr.write(b"de")
        assert dr.used_bytes == 5


class TestPointerRing:
    def test_fifo(self):
        dr = DataRingBuffer(4, 10)
        pr = PointerRing(4)
        s1, s2 = dr.write(b"a"), dr.write(b"b")
        pr.push(dr, s1)
        pr.push(dr, s2)
        assert pr.pop() == (dr, s1)
        assert pr.peek() == (dr, s2)

    def test_capacity(self):
        dr = DataRingBuffer(4, 10)
        pr = PointerRing(1)
        assert pr.push(dr, dr.write(b"a"))
        assert not pr.push(dr, dr.write(b"b"))
        assert pr.push_failures == 1

    def test_pop_empty_raises(self):
        with pytest.raises(EmulationError):
            PointerRing(2).pop()

    def test_queued_bytes(self):
        dr = DataRingBuffer(4, 10)
        pr = PointerRing(4)
        pr.push(dr, dr.write(b"abc"))
        pr.push(dr, dr.write(b"defg"))
        assert pr.queued_bytes() == 7
        assert pr.max_depth == 2


class TestTokenBucket:
    def test_burst_available_immediately(self):
        bucket = TokenBucket(rate_bps=8e9, burst_bytes=1000, now_ns=0)
        assert bucket.try_consume(1000, 0)
        assert not bucket.try_consume(1, 0)

    def test_refill_rate(self):
        bucket = TokenBucket(rate_bps=8e9, burst_bytes=1000, now_ns=0)
        bucket.try_consume(1000, 0)
        # 8 Gbps = 1 byte/ns; after 500 ns, 500 bytes available.
        assert not bucket.try_consume(501, 500)
        assert bucket.try_consume(500, 500)

    def test_tokens_capped_at_burst(self):
        bucket = TokenBucket(rate_bps=8e9, burst_bytes=100, now_ns=0)
        assert bucket.tokens(10_000) == pytest.approx(100)

    def test_set_rate(self):
        bucket = TokenBucket(rate_bps=0.0, burst_bytes=100, now_ns=0)
        bucket.try_consume(100, 0)
        bucket.set_rate(8e9, 0)
        assert bucket.try_consume(50, 50)

    def test_time_backwards_raises(self):
        bucket = TokenBucket(8e9, 100, now_ns=100)
        with pytest.raises(EmulationError):
            bucket.tokens(50)

    def test_validation(self):
        with pytest.raises(EmulationError):
            TokenBucket(-1, 100)
        with pytest.raises(EmulationError):
            TokenBucket(1, 0)
