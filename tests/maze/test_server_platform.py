"""Tests for Maze servers and the platform: byte-level forwarding."""

import pytest

from repro.broadcast import BroadcastFib
from repro.errors import EmulationError
from repro.maze import EmulationConfig, MazePlatform, run_emulation
from repro.topology import TorusTopology
from repro.types import gbps
from repro.wire.packets import BroadcastPacket, DataPacket, EVENT_FLOW_START
from repro.workloads import FixedSize, FlowArrival, poisson_trace


def encoded_packet(topology, path, flow_id=1, seq=0, payload=b"x" * 100):
    """A real encoded data packet ready for injection at path[0].

    route_index starts at 1 because handing the packet to the first hop's
    ring consumes hop 0.
    """
    ports = tuple(
        topology.port_of(path[i], path[i + 1]) for i in range(len(path) - 1)
    )
    return DataPacket(
        flow_id=flow_id,
        src=path[0],
        dst=path[-1],
        seq=seq,
        route_ports=ports,
        route_index=1,
        payload=payload,
    ).encode()


class TestForwarding:
    def test_multi_hop_delivery(self, torus2d):
        platform = MazePlatform(torus2d, step_ns=100)
        delivered = []
        platform.server(5).on_local_delivery = delivered.append
        path = [0, 1, 5]
        data = encoded_packet(torus2d, path)
        platform.server(0).app_send(data, [1])
        platform.run_for(20_000)
        assert len(delivered) == 1
        decoded = DataPacket.decode(delivered[0])
        assert decoded.dst == 5
        assert decoded.route_index == len(path) - 1

    def test_checksum_survives_forwarding(self, torus2d):
        # Forwarders mutate the route index in place; the checksum must
        # still verify at the destination (it excludes that byte).
        platform = MazePlatform(torus2d, step_ns=100)
        delivered = []
        platform.server(10).on_local_delivery = delivered.append
        data = encoded_packet(torus2d, [0, 1, 2, 6, 10])
        platform.server(0).app_send(data, [1])
        platform.run_for(50_000)
        DataPacket.decode(delivered[0], verify_checksum=True)

    def test_zero_copy_slot_freed_after_send(self, torus2d):
        platform = MazePlatform(torus2d, step_ns=100)
        platform.server(1).on_local_delivery = lambda data: None
        server0 = platform.server(0)
        data = encoded_packet(torus2d, [0, 1])
        server0.app_send(data, [1])
        assert server0.app_dr.used_slots == 1
        platform.run_for(10_000)
        assert server0.app_dr.used_slots == 0

    def test_broadcast_reaches_every_server(self, torus2d):
        fib = BroadcastFib(torus2d, n_trees=2, seed=0)
        platform = MazePlatform(torus2d, fib=fib, step_ns=100)
        received = [[] for _ in torus2d.nodes()]
        for node in torus2d.nodes():
            platform.server(node).on_local_delivery = received[node].append
        packet = BroadcastPacket(
            event=EVENT_FLOW_START, src=3, dst=7, flow_id=1, tree_id=1
        ).encode()
        children = list(fib.next_hops(3, 3, 1))
        platform.server(3).app_send(packet, children)
        platform.run_for(20_000)
        for node in torus2d.nodes():
            if node != 3:
                assert len(received[node]) == 1, f"node {node}"

    def test_unknown_incoming_link_raises(self, torus2d):
        platform = MazePlatform(torus2d, step_ns=100)
        with pytest.raises(EmulationError):
            platform.server(0).rdma_write(10, b"\x10" + b"\x00" * 34)

    def test_app_send_requires_hops(self, torus2d):
        platform = MazePlatform(torus2d, step_ns=100)
        with pytest.raises(EmulationError):
            platform.server(0).app_send(b"x", [])


class TestLinkRate:
    def test_serialization_respects_capacity(self):
        # One packet per serialization time: 1000 bytes at 1 Gbps = 8 us.
        topo = TorusTopology((2, 2), capacity_bps=gbps(1))
        platform = MazePlatform(topo, step_ns=1000)
        count = []
        platform.server(1).on_local_delivery = count.append
        for seq in range(10):
            platform.server(0).app_send(
                encoded_packet(topo, [0, 1], seq=seq, payload=b"y" * 965), [1]
            )
        platform.run_for(40_000)  # 40 us: about 5 packets of 8 us each
        assert 3 <= len(count) <= 6
        platform.run_for(60_000)
        assert len(count) == 10


class TestEmulationRunner:
    def test_small_run_completes(self):
        topo = TorusTopology((3, 3), capacity_bps=gbps(5))
        trace = poisson_trace(
            topo, 10, 50_000, sizes=FixedSize(100_000), seed=4
        )
        metrics = run_emulation(topo, trace, EmulationConfig(seed=4))
        assert metrics.completion_rate() == 1.0
        assert metrics.broadcast_bytes > 0
        for flow in metrics.flows:
            assert flow.bytes_received == flow.size_bytes

    def test_rejects_self_flows(self, torus2d):
        with pytest.raises(EmulationError):
            run_emulation(torus2d, [FlowArrival(0, 1, 1, 100, 0)])

    def test_rejects_empty_trace(self, torus2d):
        with pytest.raises(EmulationError):
            run_emulation(torus2d, [])
