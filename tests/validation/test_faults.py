"""Deterministic fault injection: seeded, reproducible, caught by the
stack's own defenses (checksums, failure views, reliability machinery)."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventLoop
from repro.topology import TorusTopology
from repro.validation import FaultEvent, FaultInjector, FaultSchedule
from repro.wire.checksum import internet_checksum, xor8

pytestmark = pytest.mark.validation


class TestDeterminism:
    def test_same_seed_same_faults(self):
        topo = TorusTopology((4, 4))
        a, b = FaultInjector(seed=7), FaultInjector(seed=7)
        assert a.sample_links(topo, 5) == b.sample_links(topo, 5)
        assert a.corrupt(b"hello world") == b.corrupt(b"hello world")
        assert a.reordered(list(range(20))) == b.reordered(list(range(20)))

    def test_different_seeds_differ(self):
        topo = TorusTopology((4, 4))
        samples = {tuple(FaultInjector(seed=s).sample_links(topo, 6)) for s in range(8)}
        assert len(samples) > 1


class TestTopologyFaults:
    def test_fail_links_yields_connected_view(self):
        topo = TorusTopology((4, 4))
        injector = FaultInjector(seed=3)
        degraded, failed = injector.fail_links(topo, 4)
        assert degraded.is_connected()
        assert degraded.n_links == topo.n_links - 4
        assert injector.recovery.failed_links == set(failed)

    def test_fail_nodes_keeps_survivors_connected(self):
        topo = TorusTopology((4, 4))
        injector = FaultInjector(seed=5)
        degraded, failed = injector.fail_nodes(topo, 2)
        assert len(failed) == 2
        assert injector.recovery.failed_nodes == set(failed)
        survivors = [n for n in topo.nodes() if n not in failed]
        distances = degraded.distances_from(survivors[0])
        assert all(distances[n] >= 0 for n in survivors)

    def test_too_many_failures_rejected(self):
        topo = TorusTopology((3, 3))
        with pytest.raises(SimulationError):
            FaultInjector().fail_nodes(topo, topo.n_nodes)


class TestCorruption:
    def test_corruption_always_changes_data(self):
        injector = FaultInjector(seed=11)
        data = bytes(range(64))
        for _ in range(32):
            assert injector.corrupt(data) != data

    def test_internet_checksum_catches_bit_flips(self):
        injector = FaultInjector(seed=13)
        data = bytes(range(40))
        stored = internet_checksum(data)
        for n_bits in (1, 2, 3):
            corrupted = injector.corrupt(data, n_bits=n_bits)
            assert internet_checksum(corrupted) != stored

    def test_xor8_catches_single_bit_flips(self):
        injector = FaultInjector(seed=17)
        data = bytes(range(16))  # broadcast-packet sized
        stored = xor8(data)
        for _ in range(16):
            assert xor8(injector.corrupt(data, n_bits=1)) != stored

    def test_xor8_catches_truncation(self):
        injector = FaultInjector(seed=19)
        data = bytes(range(16))
        truncated = injector.truncate(data)
        assert len(truncated) < len(data)
        assert xor8(truncated) != xor8(data)


class TestDropAndReorder:
    def test_drop_decider_rate(self):
        decide = FaultInjector(seed=23).drop_decider(0.2)
        dropped = sum(decide() for _ in range(5000))
        assert 800 < dropped < 1200  # 0.2 +- generous slack

    def test_drop_decider_bounds_checked(self):
        with pytest.raises(SimulationError):
            FaultInjector().drop_decider(1.5)

    def test_reorder_is_bounded_permutation(self):
        injector = FaultInjector(seed=29)
        items = list(range(50))
        shuffled = injector.reordered(items, window=4)
        assert sorted(shuffled) == items
        assert shuffled != items
        for position, value in enumerate(shuffled):
            assert abs(position - value) <= 4

    def test_control_message_loss_subset(self):
        injector = FaultInjector(seed=31)
        lost = injector.lose_control_messages(range(100), 0.3)
        assert set(lost) <= set(range(100))
        assert 10 < len(lost) < 50


class TestFaultSchedule:
    def test_installs_and_fires_in_order(self):
        loop = EventLoop()
        fired = []
        schedule = FaultSchedule(
            [
                FaultEvent(200, "link_failure", (0, 1)),
                FaultEvent(100, "node_failure", 3),
            ]
        )
        schedule.add(FaultEvent(150, "link_recovery", (0, 1)))
        assert schedule.install(loop, lambda e: fired.append(e)) == 3
        loop.run()
        assert [e.at_ns for e in fired] == [100, 150, 200]
        assert fired[0].kind == "node_failure"
