"""The runtime invariant auditor: clean runs stay silent, injected bugs
are caught at the layer they corrupt."""

import pytest

from repro.congestion import FlowSpec, WeightProvider, waterfill
from repro.errors import InvariantViolation
from repro.sim import (
    EventLoop,
    KIND_DATA,
    RackNetwork,
    SimConfig,
    SimPacket,
    run_simulation,
)
from repro.topology import TorusTopology
from repro.types import gbps
from repro.validation import InvariantAuditor
from repro.workloads import FlowArrival

pytestmark = pytest.mark.validation


def _trace(topology, n=4, size=200_000):
    return [
        FlowArrival(
            flow_id=i,
            src=i,
            dst=(i + topology.n_nodes // 2) % topology.n_nodes,
            size_bytes=size,
            start_ns=i * 1000,
        )
        for i in range(n)
    ]


class TestCleanRuns:
    @pytest.mark.parametrize("stack", ["r2c2", "tcp", "pfq"])
    def test_audited_run_is_clean(self, stack):
        topo = TorusTopology((3, 3), capacity_bps=gbps(10))
        metrics = run_simulation(
            topo,
            _trace(topo),
            SimConfig(stack=stack, mtu_payload=8192, audit=True),
        )
        report = metrics.audit
        assert report is not None and report.ok
        assert report.events > 0
        assert report.packets_accepted > 0
        assert report.packets_propagated == report.packets_arrived
        assert report.flow_checks > 0
        assert all(f.completed for f in metrics.flows)

    def test_per_node_control_plane_allocations_audited(self):
        topo = TorusTopology((3, 3), capacity_bps=gbps(10))
        metrics = run_simulation(
            topo,
            _trace(topo),
            SimConfig(
                stack="r2c2",
                mtu_payload=8192,
                audit=True,
                control_plane="per_node",
            ),
        )
        assert metrics.audit.ok
        assert metrics.audit.allocations_audited >= topo.n_nodes

    def test_unaudited_run_carries_no_report(self):
        topo = TorusTopology((3, 3), capacity_bps=gbps(10))
        metrics = run_simulation(
            topo, _trace(topo, n=2), SimConfig(stack="r2c2", mtu_payload=8192)
        )
        assert metrics.audit is None


class TestInjectedCapacityBug:
    """A deliberately broken allocator must not slip past the auditor."""

    def _tampered_allocation(self):
        topo = TorusTopology((3, 3), capacity_bps=gbps(10))
        provider = WeightProvider(topo)
        specs = [FlowSpec(0, 0, 4, "ecmp"), FlowSpec(1, 1, 5, "ecmp")]
        allocation = waterfill(topo, specs, provider, headroom=0.05)
        # The injected bug: an allocator that hands out double rates while
        # believing the same link loads fit the same capacities.
        allocation.rates_bps = {f: 2 * r for f, r in allocation.rates_bps.items()}
        allocation.link_load_bps = allocation.link_load_bps * 2.0
        return allocation

    def test_strict_mode_raises(self):
        auditor = InvariantAuditor(strict=True)
        with pytest.raises(InvariantViolation, match="exceeds"):
            auditor.audit_allocation(self._tampered_allocation())

    def test_collecting_mode_records(self):
        auditor = InvariantAuditor(strict=False)
        auditor.audit_allocation(self._tampered_allocation())
        report = auditor.report()
        assert not report.ok
        assert any("capacity" in v for v in report.violations)

    def test_negative_rate_rejected(self):
        allocation = self._tampered_allocation()
        allocation.rates_bps[0] = -1.0
        auditor = InvariantAuditor(strict=False)
        auditor.audit_allocation(allocation)
        assert any("invalid rate" in v for v in auditor.violations)

    def test_headroom_respecting_allocation_passes(self):
        topo = TorusTopology((3, 3), capacity_bps=gbps(10))
        provider = WeightProvider(topo)
        specs = [FlowSpec(i, i, (i + 4) % 9, "rps") for i in range(6)]
        allocation = waterfill(topo, specs, provider, headroom=0.05)
        auditor = InvariantAuditor(strict=True)
        auditor.audit_allocation(allocation)
        assert auditor.report().ok


class TestInjectedDataPlaneBug:
    def test_double_start_serialization_overlap_caught(self):
        """A scheduler bug that starts a second serialization while the
        transmitter is busy is exactly "link above line rate"."""
        topo = TorusTopology((3, 3), capacity_bps=gbps(10))
        loop = EventLoop()
        auditor = InvariantAuditor(strict=True)
        auditor.attach_loop(loop)
        network = RackNetwork(loop, topo, auditor=auditor)
        port = network.port(0, 1)
        port.send(SimPacket(KIND_DATA, 0, 0, 1, 0, 8000, path=(0, 1)))
        port.send(SimPacket(KIND_DATA, 0, 0, 1, 1, 8000, path=(0, 1)))
        assert port.busy
        with pytest.raises(InvariantViolation, match="line rate"):
            port._start_next()  # the injected bug: ignores the busy flag

    def test_normal_back_to_back_sends_are_fine(self):
        topo = TorusTopology((3, 3), capacity_bps=gbps(10))
        loop = EventLoop()
        auditor = InvariantAuditor(strict=True)
        auditor.attach_loop(loop)
        network = RackNetwork(loop, topo, auditor=auditor)

        class Sink:
            def deliver(self, packet):
                pass

        network.stack_at[1] = Sink()
        for seq in range(5):
            network.port(0, 1).send(
                SimPacket(KIND_DATA, 0, 0, 1, seq, 8000, path=(0, 1))
            )
        loop.run()
        report = auditor.final_check()
        assert report.ok
        assert report.packets_accepted == 5
        assert report.packets_arrived == 5


class TestEventCausality:
    def test_clock_regression_caught(self):
        auditor = InvariantAuditor(strict=False)
        auditor.on_event(10, 0, 0)
        auditor.on_event(5, 0, 1)
        assert any("backwards" in v for v in auditor.violations)

    def test_fifo_tie_break_violation_caught(self):
        auditor = InvariantAuditor(strict=False)
        auditor.on_event(10, 0, 5)
        auditor.on_event(10, 0, 4)
        assert any("FIFO" in v for v in auditor.violations)

    def test_priority_tie_break_violation_caught(self):
        auditor = InvariantAuditor(strict=False)
        auditor.on_event(10, 7, 4)
        auditor.on_event(10, 3, 5)
        assert any("FIFO" in v for v in auditor.violations)

    def test_priority_orders_before_sequence(self):
        auditor = InvariantAuditor(strict=True)
        auditor.on_event(10, 3, 9)
        auditor.on_event(10, 7, 2)  # higher priority may carry a lower seq
        assert auditor.report().ok

    def test_ordered_events_pass(self):
        auditor = InvariantAuditor(strict=True)
        auditor.on_event(10, 0, 0)
        auditor.on_event(10, 0, 1)
        auditor.on_event(12, 0, 2)
        assert auditor.report().ok


class TestFlowMonotonicity:
    class _Flow:
        def __init__(self, flow_id, bytes_received, completed_ns, start_ns=0):
            self.flow_id = flow_id
            self.bytes_received = bytes_received
            self.completed_ns = completed_ns
            self.start_ns = start_ns

    def test_shrinking_bytes_caught(self):
        auditor = InvariantAuditor(strict=False)
        auditor.on_flow_progress(self._Flow(1, 1000, None), 10)
        auditor.on_flow_progress(self._Flow(1, 900, None), 20)
        assert any("shrank" in v for v in auditor.violations)

    def test_completion_rewrite_caught(self):
        auditor = InvariantAuditor(strict=False)
        auditor.on_flow_progress(self._Flow(1, 1000, 50), 50)
        auditor.on_flow_progress(self._Flow(1, 1000, 60), 60)
        assert any("completion time changed" in v for v in auditor.violations)

    def test_completion_before_start_caught(self):
        auditor = InvariantAuditor(strict=False)
        auditor.on_flow_progress(self._Flow(1, 1000, 5, start_ns=10), 20)
        assert any("before it started" in v for v in auditor.violations)

    def test_disabled_auditor_is_silent(self):
        auditor = InvariantAuditor(strict=True)
        auditor.enabled = False
        auditor.on_flow_progress(self._Flow(1, 1000, 5, start_ns=10), 20)
        auditor.on_event(10, 0, 5)
        auditor.on_event(5, 0, 4)
        assert auditor.report().ok
