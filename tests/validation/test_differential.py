"""Differential-oracle harness: independent implementations must agree.

These are the acceptance bounds of the validation subsystem: the
water-fill matches the LP reference to 1e-6 relative error and the packet
simulator matches the fluid simulator to 5 % on randomized cases.  Set
``R2C2_VALIDATION_CASES`` to shrink the sweeps for a CI smoke slice.
"""

import os

import pytest

from repro.validation import (
    random_connected_topology,
    random_single_path_specs,
    sim_vs_fluid_report,
    sim_vs_maze_report,
    waterfill_vs_lp_case,
    waterfill_vs_lp_report,
)

pytestmark = pytest.mark.validation

#: Acceptance demands >= 20 randomized cases for the bounded oracles.
_N_CASES = int(os.environ.get("R2C2_VALIDATION_CASES", "20"))


class TestWaterfillVsLp:
    def test_bound_1e6_over_randomized_cases(self):
        report = waterfill_vs_lp_report(n_cases=_N_CASES, seed=0, tolerance=1e-6)
        assert report.n_cases == _N_CASES
        assert report.ok, report.summary()

    def test_case_carries_per_flow_errors(self):
        topology = random_connected_topology(42)
        specs = random_single_path_specs(42, topology, n_flows=6)
        case = waterfill_vs_lp_case(topology, specs, seed=42)
        assert len(case.per_flow_rel_error) == 6
        assert case.max_rel_error <= 1e-6

    def test_report_summary_names_worst_seed(self):
        report = waterfill_vs_lp_report(n_cases=3, seed=9)
        assert "waterfill-vs-lp" in report.summary()
        assert report.worst() in report.cases


class TestSimVsFluid:
    def test_bound_5pct_over_randomized_cases(self):
        report = sim_vs_fluid_report(n_cases=_N_CASES, seed=0, tolerance=0.05)
        assert report.n_cases == _N_CASES
        assert report.ok, report.summary()
        # Every case compares every flow, not a survivor subset.
        assert all(len(c.per_flow_rel_error) == c.n_flows for c in report.cases)


class TestSimVsMaze:
    def test_emulation_tracks_simulator(self):
        # The emulator quantizes time and ships 8 KB slots, so this bound is
        # deliberately loose (Figure 7 claims agreement, not equality).
        n_cases = min(_N_CASES, 5)
        report = sim_vs_maze_report(n_cases=n_cases, seed=0, tolerance=0.35)
        assert report.n_cases == n_cases
        assert report.ok, report.summary()
