"""Structured oracle verdict adapters (repro.validation.verdicts)."""

import pytest

from repro.validation.verdicts import (
    OracleVerdict,
    audit_verdict,
    consistency_verdict,
    crash_verdict,
    sanity_verdicts,
    sim_result_verdicts,
)

pytestmark = pytest.mark.validation


class TestVerdictShapes:
    def test_round_trip(self):
        v = OracleVerdict(oracle="audit", ok=False, details=("a", "b"))
        assert OracleVerdict.from_dict(v.to_dict()) == v

    def test_crash(self):
        assert crash_verdict(None).ok
        v = crash_verdict("SimulationError: no link 0 -> 4")
        assert not v.ok and "no link" in v.details[0]

    def test_audit(self):
        assert audit_verdict({}).ok  # unaudited runs pass vacuously
        assert audit_verdict({"audit": {"ok": True, "violations": []}}).ok
        v = audit_verdict({"audit": {"ok": False, "violations": ["flow 0: short"]}})
        assert not v.ok and v.details == ("flow 0: short",)

    def test_sanity(self):
        good = {"completion_rate": 1.0, "summary": {"flows": 3, "completed": 3}}
        assert all(v.ok for v in sanity_verdicts(good))
        bad_rate = {"completion_rate": 1.5, "summary": {}}
        assert any(
            v.oracle == "completion_rate" and not v.ok
            for v in sanity_verdicts(bad_rate)
        )
        bad_count = {"completion_rate": 1.0, "summary": {"flows": 2, "completed": 3}}
        assert any(
            v.oracle == "flow_accounting" and not v.ok
            for v in sanity_verdicts(bad_count)
        )

    def test_consistency(self):
        a = {"summary": {"drops": 1}, "telemetry": {"counters": {}}}
        assert consistency_verdict(a, dict(a)).ok
        b = {"summary": {"drops": 2}, "telemetry": {"counters": {}}}
        v = consistency_verdict(a, b)
        assert not v.ok
        assert any("'summary'" in d for d in v.details)
        assert not any("'telemetry'" in d for d in v.details)

    def test_sim_result_verdicts_bundle(self):
        result = {
            "completion_rate": 1.0,
            "summary": {"flows": 1, "completed": 1},
            "audit": {"ok": True, "violations": []},
        }
        oracles = [v.oracle for v in sim_result_verdicts(result)]
        assert oracles == ["audit", "completion_rate", "flow_accounting"]
        assert all(v.ok for v in sim_result_verdicts(result))
