"""Tests for hypercube and folded-Clos topologies."""

import pytest

from repro.errors import TopologyError
from repro.topology import FoldedClosTopology, HypercubeTopology


class TestHypercube:
    def test_node_and_link_count(self):
        topo = HypercubeTopology(4)
        assert topo.n_nodes == 16
        assert topo.n_links == 16 * 4

    def test_distance_is_hamming(self):
        topo = HypercubeTopology(4)
        assert topo.distance(0b0000, 0b1111) == 4
        assert topo.distance(0b1010, 0b1010) == 0
        assert topo.distance(0b0001, 0b0010) == 2

    def test_neighbors_differ_in_one_bit(self):
        topo = HypercubeTopology(3)
        for node in topo.nodes():
            for nxt in topo.neighbors(node):
                assert bin(node ^ nxt).count("1") == 1

    def test_coordinates_roundtrip(self):
        topo = HypercubeTopology(3)
        for node in topo.nodes():
            assert topo.node_at(topo.coordinates(node)) == node

    def test_coordinates_are_bits_msb_first(self):
        topo = HypercubeTopology(3)
        assert topo.coordinates(0b110) == (1, 1, 0)

    def test_dims_property(self):
        assert HypercubeTopology(3).dims == (2, 2, 2)

    def test_rejects_zero_dims(self):
        with pytest.raises(TopologyError):
            HypercubeTopology(0)

    def test_bad_coordinate_bit(self):
        with pytest.raises(TopologyError):
            HypercubeTopology(2).node_at((0, 2))


class TestFoldedClos:
    def test_structure(self, clos):
        # 16 hosts, radix 8: 4 leaves, 4 spines.
        assert clos.n_hosts == 16
        assert clos.n_leaves == 4
        assert clos.n_spines == 4
        assert clos.n_nodes == 24

    def test_host_to_host_distance(self, clos):
        # Same leaf: host-leaf-host = 2; different leaf: 4.
        assert clos.distance(0, 1) == 2
        assert clos.distance(0, 15) == 4

    def test_leaf_of(self, clos):
        assert clos.leaf_of(0) == 16
        assert clos.leaf_of(15) == 19
        with pytest.raises(TopologyError):
            clos.leaf_of(20)

    def test_is_host(self, clos):
        assert clos.is_host(0)
        assert not clos.is_host(16)

    def test_512_host_paper_configuration(self):
        # The §6 example: 512 hosts on 32-port switches.
        topo = FoldedClosTopology(512, radix=32)
        assert topo.n_leaves == 32
        assert topo.n_spines == 16
        assert topo.n_nodes == 512 + 32 + 16

    def test_rejects_odd_radix(self):
        with pytest.raises(TopologyError):
            FoldedClosTopology(16, radix=7)

    def test_rejects_nonmultiple_hosts(self):
        with pytest.raises(TopologyError):
            FoldedClosTopology(17, radix=8)

    def test_rejects_too_many_hosts(self):
        with pytest.raises(TopologyError):
            FoldedClosTopology(4 * 8 * 2, radix=8)  # needs > radix leaves

    def test_host_pairs(self):
        topo = FoldedClosTopology(8, radix=8)
        pairs = topo.host_pairs()
        assert len(pairs) == 8 * 7
        assert all(a != b for a, b in pairs)
