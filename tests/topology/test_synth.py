"""repro.topology.synth: fabric synthesis, budgets, determinism, tiers."""

import json
import subprocess
import sys

import pytest

from repro.analysis import (
    TIER_GATEWAY,
    TIER_INTRA,
    link_tiers,
    saturation_throughput,
    tiered_channel_loads,
)
from repro.errors import TopologyError
from repro.interrack import MultiRackFabric
from repro.routing.base import make_protocol
from repro.topology import (
    FabricSpec,
    FatTreeFabric,
    SYNTH_DESIGNS,
    TorusTopology,
    bisection_bandwidth_bps,
    synthesize,
)
from repro.topology.partition import partition_topology
from repro.workloads import STANDARD_PATTERNS, RackShiftPattern

pytestmark = pytest.mark.synth

SMALL = dict(rack="torus", rack_dims=(2, 2), n_racks=4, gateway_ports=2,
             oversubscription=64.0)


def _spec(**overrides):
    merged = dict(SMALL)
    merged.update(overrides)
    return FabricSpec(**merged)


class TestSpec:
    def test_round_trips_through_dict(self):
        spec = _spec(design="fattree", max_cost=5000.0, seed=7)
        clone = FabricSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_fingerprint_distinguishes_specs(self):
        assert _spec(seed=0).fingerprint() != _spec(seed=1).fingerprint()
        assert _spec().fingerprint() != _spec(n_racks=5).fingerprint()

    def test_validation(self):
        with pytest.raises(TopologyError, match="unknown fabric design"):
            FabricSpec(design="mobius")
        with pytest.raises(TopologyError, match="two racks"):
            _spec(n_racks=1)
        with pytest.raises(TopologyError, match="port budget"):
            _spec(gateway_ports=0)

    def test_node_count_arithmetic(self):
        assert _spec().n_nodes == 16
        assert FabricSpec(rack="hypercube", rack_dims=(3,), n_racks=4).rack_size == 8


class TestDesigns:
    @pytest.mark.parametrize("design", SYNTH_DESIGNS)
    def test_every_design_synthesizes(self, design):
        fabric = synthesize(_spec(design=design))
        assert fabric.report["budget_ok"] is True
        assert fabric.report["n_racks"] == 4
        assert fabric.report["rack_size"] == 4
        assert fabric.bridges
        assert fabric.topology.n_nodes >= 16

    @pytest.mark.parametrize("design", ("flat", "ring"))
    def test_direct_designs_emit_multirack(self, design):
        fabric = synthesize(_spec(design=design))
        topo = fabric.topology
        assert isinstance(topo, MultiRackFabric)
        # The emitted bridge list is exactly the fabric's wiring: every
        # bridge maps to a pair of directed links via the id arithmetic.
        for rack_a, local_a, rack_b, local_b in fabric.bridges:
            src = topo.global_id(rack_a, local_a)
            dst = topo.global_id(rack_b, local_b)
            assert dst in topo.neighbors(src)
            assert src in topo.neighbors(dst)

    def test_flat_is_regular_on_racks(self):
        fabric = synthesize(_spec(design="flat", n_racks=6, gateway_ports=3))
        per_rack = {r: 0 for r in range(6)}
        for rack_a, _la, rack_b, _lb in fabric.bridges:
            per_rack[rack_a] += 1
            per_rack[rack_b] += 1
        assert set(per_rack.values()) == {3}

    def test_flat_rejects_impossible_degree(self):
        # degree >= n_racks: no simple regular graph exists.
        with pytest.raises(TopologyError):
            synthesize(_spec(design="flat", n_racks=3, gateway_ports=4))

    def test_oversubscription_budget_enforced(self):
        with pytest.raises(TopologyError, match="oversubscription"):
            synthesize(_spec(design="ring", oversubscription=1.0))

    def test_cost_budget_enforced(self):
        with pytest.raises(TopologyError, match="cost"):
            synthesize(_spec(design="fattree", oversubscription=1e9,
                             max_cost=10.0))

    def test_fattree_minimizes_cost(self):
        cheap = synthesize(_spec(design="fattree", oversubscription=1e9))
        assert cheap.report["cost"] <= 5000
        assert cheap.report["switches"] >= 1


class TestFatTreeFabric:
    @pytest.fixture()
    def fabric(self):
        return synthesize(_spec(design="fattree", oversubscription=1e9))

    def test_node_id_arithmetic(self, fabric):
        topo = fabric.topology
        assert isinstance(topo, FatTreeFabric)
        assert topo.n_hosts == 16
        assert topo.n_nodes == 16 + topo.n_edge + topo.n_core
        for node in topo.hosts():
            assert topo.rack_of(node) == node // topo.rack_size
            assert topo.local_id(node) == node % topo.rack_size
            assert not topo.is_switch(node)
        for node in range(topo.n_hosts, topo.n_nodes):
            assert topo.is_switch(node)
            with pytest.raises(TopologyError):
                topo.local_id(node)

    def test_gateway_links_are_the_switch_tier(self, fabric):
        topo = fabric.topology
        gateway = [l for l in topo.links if topo.is_gateway_link(l.link_id)]
        assert gateway
        for link in gateway:
            assert topo.is_switch(link.src) or topo.is_switch(link.dst)

    def test_composed_bisection_hook(self, fabric):
        topo = fabric.topology
        assert bisection_bandwidth_bps(topo) == topo.composed_bisection_bps()
        assert topo.composed_bisection_bps() > 0


class TestDeterminism:
    def test_same_spec_same_artifact(self):
        a = synthesize(_spec(design="flat", seed=3))
        b = synthesize(_spec(design="flat", seed=3))
        assert a.fingerprint == b.fingerprint
        assert a.bridges == b.bridges
        assert json.dumps(a.describe(), sort_keys=True) == json.dumps(
            b.describe(), sort_keys=True
        )

    def test_different_seed_different_wiring(self):
        fingerprints = {
            synthesize(_spec(design="flat", n_racks=8, gateway_ports=3,
                             seed=seed)).fingerprint
            for seed in range(4)
        }
        assert len(fingerprints) > 1

    def test_cross_process_fingerprint_stable(self):
        """Two independent interpreters must synthesize identical bytes."""
        script = (
            "from repro.topology import FabricSpec, synthesize\n"
            "import json\n"
            "fabric = synthesize(FabricSpec(design='flat', rack='torus',\n"
            "    rack_dims=(2, 2), n_racks=6, gateway_ports=3, seed=11))\n"
            "print(json.dumps({'fp': fabric.fingerprint,\n"
            "                  'bridges': [list(b) for b in fabric.bridges]},\n"
            "                 sort_keys=True))\n"
        )
        outputs = [
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
            ).stdout
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        local = synthesize(_spec(design="flat", n_racks=6, gateway_ports=3,
                                 seed=11))
        assert json.loads(outputs[0])["fp"] == local.fingerprint


class TestRackPartition:
    @pytest.mark.parametrize("design", ("flat", "ring"))
    @pytest.mark.parametrize("k", (2, 4))
    def test_rack_cut_crosses_only_gateways(self, design, k):
        topo = synthesize(_spec(design=design, n_racks=4, seed=2)).topology
        plan = partition_topology(topo, k)
        # auto strategy resolves to the rack-aligned cut on multi-rack fabrics
        assert plan.assignment == partition_topology(topo, k, "rack").assignment
        for link in plan.cut_edges():
            assert topo.is_bridge_link(link.link_id)

    def test_rack_cut_lookahead_is_gateway_latency(self):
        topo = synthesize(_spec(design="flat", seed=2)).topology
        plan = partition_topology(topo, 2)
        assert plan.lookahead_ns() == 500

    def test_more_shards_than_racks_falls_back(self):
        topo = synthesize(_spec(design="flat", n_racks=4, seed=2)).topology
        plan = partition_topology(topo, 8)
        assert len(plan.shards()) == 8
        assert all(plan.nodes_of(shard) for shard in range(8))


class TestTieredLoads:
    def test_tiers_partition_the_links(self):
        topo = synthesize(_spec(design="flat", seed=2)).topology
        tiers = link_tiers(topo)
        assert len(tiers) == topo.n_links
        assert set(tiers) == {TIER_INTRA, TIER_GATEWAY}
        n_gateway = sum(1 for t in tiers if t == TIER_GATEWAY)
        assert n_gateway == len(topo.bridge_links())  # both directions

    def test_gateway_is_the_bottleneck_under_rack_shift(self):
        topo = synthesize(_spec(design="ring")).topology
        protocol = make_protocol("hier_wlb", topo)
        result = tiered_channel_loads(
            protocol, RackShiftPattern().matrix(topo)
        )
        assert result["bottleneck"] == TIER_GATEWAY
        gateway = result["tiers"][TIER_GATEWAY]
        intra = result["tiers"][TIER_INTRA]
        assert gateway["saturation"] < intra["saturation"]
        assert result["saturation"] == gateway["saturation"]

    def test_single_tier_matches_plain_saturation(self):
        topo = TorusTopology((4, 4))
        protocol = make_protocol("wlb", topo)
        matrix = STANDARD_PATTERNS["uniform"].matrix(topo)
        tiered = tiered_channel_loads(protocol, matrix)
        assert set(tiered["tiers"]) == {TIER_INTRA}
        assert tiered["saturation"] == pytest.approx(
            saturation_throughput(protocol, matrix)
        )
