"""Tests for bisection-capacity calculations."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    FoldedClosTopology,
    GraphTopology,
    HypercubeTopology,
    MeshTopology,
    TorusTopology,
    bisection_bandwidth_bps,
    bisection_channel_count,
)
from repro.types import gbps


class TestClosedForms:
    def test_torus_8ary_2cube(self):
        # 4 * 64 / 8 = 32 directed channels across the bisection.
        assert bisection_channel_count(TorusTopology((8, 8))) == 32

    def test_torus_3d(self):
        assert bisection_channel_count(TorusTopology((8, 8, 8))) == 4 * 512 // 8

    def test_mesh_has_half_the_torus_bisection(self):
        torus = bisection_channel_count(TorusTopology((4, 4)))
        mesh = bisection_channel_count(MeshTopology((4, 4)))
        assert torus == 2 * mesh

    def test_hypercube(self):
        assert bisection_channel_count(HypercubeTopology(4)) == 16

    def test_clos(self):
        topo = FoldedClosTopology(16, radix=8)
        assert bisection_channel_count(topo) == 4 * 4

    def test_odd_dims_rejected(self):
        with pytest.raises(TopologyError):
            bisection_channel_count(TorusTopology((3, 3)))


class TestBandwidth:
    def test_seamicro_scale_bandwidth(self):
        # The SeaMicro rack advertises 1.28 Tbps bisection; a 512-node
        # 3D torus with 10 Gbps links gives 4*512/8 * 10G = 2.56 Tbps of
        # directed-channel capacity, i.e. 1.28 Tbps per direction.
        topo = TorusTopology((8, 8, 8), capacity_bps=gbps(10))
        assert bisection_bandwidth_bps(topo) == pytest.approx(2.56e12)


class TestBruteForce:
    def test_matches_closed_form_on_small_torus(self):
        topo = TorusTopology((4, 2))
        generic = GraphTopology(
            topo.n_nodes,
            sorted({(min(l.src, l.dst), max(l.src, l.dst)) for l in topo.links}),
        )
        assert bisection_channel_count(generic) == bisection_channel_count(topo)

    def test_too_large_raises(self):
        topo = GraphTopology(18, [(i, (i + 1) % 18) for i in range(18)])
        with pytest.raises(TopologyError):
            bisection_channel_count(topo)

    def test_odd_node_count_raises(self):
        topo = GraphTopology(3, [(0, 1), (1, 2)])
        with pytest.raises(TopologyError):
            bisection_channel_count(topo)

    def test_ring(self):
        ring = GraphTopology(8, [(i, (i + 1) % 8) for i in range(8)])
        # A balanced cut of a ring severs two cables = 4 directed channels.
        assert bisection_channel_count(ring) == 4
