"""Tests for torus and mesh topologies."""

import pytest

from repro.errors import TopologyError
from repro.topology import MeshTopology, TorusTopology


class TestTorus:
    def test_node_count(self):
        assert TorusTopology((8, 8, 8)).n_nodes == 512
        assert TorusTopology((3, 3, 3)).n_nodes == 27

    def test_link_count_3d(self):
        # Each node has 6 neighbors in a 3D torus with dims > 2.
        topo = TorusTopology((4, 4, 4))
        assert topo.n_links == 64 * 6

    def test_degree_with_dim_two(self):
        # A dimension of size two contributes a single neighbor.
        topo = TorusTopology((2, 4))
        assert all(topo.degree(n) == 3 for n in topo.nodes())

    def test_coordinates_roundtrip(self):
        topo = TorusTopology((3, 4, 5))
        for node in topo.nodes():
            assert topo.node_at(topo.coordinates(node)) == node

    def test_row_major_layout(self):
        topo = TorusTopology((3, 4, 5))
        assert topo.node_at((0, 0, 0)) == 0
        assert topo.node_at((0, 0, 1)) == 1
        assert topo.node_at((0, 1, 0)) == 5
        assert topo.node_at((1, 0, 0)) == 20

    def test_analytic_distance_matches_bfs(self):
        topo = TorusTopology((4, 5))
        bfs = topo.distances_from(0)
        for dst in topo.nodes():
            assert topo.distance(0, dst) == bfs[dst]

    def test_wraparound_distance(self):
        topo = TorusTopology((8, 8))
        a = topo.node_at((0, 0))
        b = topo.node_at((7, 0))
        assert topo.distance(a, b) == 1

    def test_diameter(self):
        assert TorusTopology((4, 4)).diameter() == 4
        assert TorusTopology((8, 8, 8)).diameter() == 12

    def test_ring_offsets_tie(self):
        topo = TorusTopology((4, 4))
        offsets = topo.ring_offsets(topo.node_at((0, 0)), topo.node_at((2, 0)))
        assert sorted(offsets[0]) == [-2, 2]
        assert offsets[1] == [0]

    def test_ring_offsets_unique(self):
        topo = TorusTopology((5, 5))
        offsets = topo.ring_offsets(topo.node_at((0, 0)), topo.node_at((3, 1)))
        assert offsets == [[-2], [1]]

    def test_rejects_dim_below_two(self):
        with pytest.raises(TopologyError):
            TorusTopology((1, 4))

    def test_rejects_empty_dims(self):
        with pytest.raises(TopologyError):
            TorusTopology(())

    def test_bad_coordinates_raise(self):
        topo = TorusTopology((4, 4))
        with pytest.raises(TopologyError):
            topo.node_at((4, 0))
        with pytest.raises(TopologyError):
            topo.node_at((0, 0, 0))


class TestMesh:
    def test_no_wraparound(self):
        topo = MeshTopology((4, 4))
        a = topo.node_at((0, 0))
        b = topo.node_at((3, 0))
        assert not topo.has_link(a, b)
        assert topo.distance(a, b) == 3

    def test_corner_degree(self):
        topo = MeshTopology((4, 4))
        assert topo.degree(topo.node_at((0, 0))) == 2
        assert topo.degree(topo.node_at((1, 1))) == 4

    def test_link_count_2d(self):
        # 2 * (k-1) * k links per dimension, both directions.
        topo = MeshTopology((4, 4))
        assert topo.n_links == 2 * (2 * 3 * 4)

    def test_manhattan_distance(self):
        topo = MeshTopology((5, 5))
        assert topo.distance(topo.node_at((0, 0)), topo.node_at((4, 4))) == 8

    def test_diameter(self):
        assert MeshTopology((4, 4)).diameter() == 6

    def test_connected(self):
        assert MeshTopology((3, 3, 3)).is_connected()
