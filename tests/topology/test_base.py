"""Tests for the generic Topology machinery."""

import pytest

from repro.errors import TopologyError
from repro.topology import GraphTopology, Topology


class TestConstruction:
    def test_rejects_zero_nodes(self):
        with pytest.raises(TopologyError):
            Topology(0, [])

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 1), (0, 1)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 2)])

    def test_rejects_bad_capacity(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 1)], capacity_bps=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 1)], latency_ns=-1)

    def test_undirected_helper_creates_both_directions(self):
        topo = GraphTopology(2, [(0, 1)])
        assert topo.has_link(0, 1)
        assert topo.has_link(1, 0)
        assert topo.n_links == 2

    def test_directed_edge_is_one_way(self):
        topo = Topology(2, [(0, 1)])
        assert topo.has_link(0, 1)
        assert not topo.has_link(1, 0)


class TestAccessors:
    def test_links_are_dense_and_indexed(self, line3):
        for link in line3.links:
            assert line3.links[link.link_id] is link
            assert line3.link_id(link.src, link.dst) == link.link_id

    def test_link_lookup_missing_raises(self, line3):
        with pytest.raises(TopologyError):
            line3.link_id(0, 2)

    def test_neighbors_sorted(self, torus2d):
        for node in torus2d.nodes():
            neighbors = torus2d.neighbors(node)
            assert list(neighbors) == sorted(neighbors)

    def test_in_neighbors_match_out_neighbors_for_undirected(self, torus2d):
        for node in torus2d.nodes():
            assert torus2d.in_neighbors(node) == torus2d.neighbors(node)

    def test_degree_of_2d_torus_is_four(self, torus2d):
        assert all(torus2d.degree(n) == 4 for n in torus2d.nodes())
        assert torus2d.max_degree() == 4

    def test_node_range_check(self, line3):
        with pytest.raises(TopologyError):
            line3.neighbors(3)


class TestPorts:
    def test_port_roundtrip(self, torus2d):
        for node in torus2d.nodes():
            for port, neighbor in enumerate(torus2d.neighbors(node)):
                assert torus2d.port_of(node, neighbor) == port
                assert torus2d.neighbor_at_port(node, port) == neighbor

    def test_port_of_non_neighbor_raises(self, torus2d):
        with pytest.raises(TopologyError):
            torus2d.port_of(0, 10)

    def test_invalid_port_raises(self, line3):
        with pytest.raises(TopologyError):
            line3.neighbor_at_port(0, 5)

    def test_path_to_ports_roundtrip(self, torus2d):
        path = [0, 1, 2, 6]
        ports = torus2d.path_to_ports(path)
        assert torus2d.ports_to_path(0, ports) == path


class TestDistances:
    def test_line_distances(self, line3):
        assert line3.distance(0, 2) == 2
        assert line3.distance(0, 0) == 0

    def test_distances_from_matches_distance(self, torus2d):
        dist = torus2d.distances_from(0)
        for dst in torus2d.nodes():
            assert dist[dst] == torus2d.distance(0, dst)

    def test_distances_to_symmetric_on_undirected(self, torus2d):
        assert torus2d.distances_to(5) == torus2d.distances_from(5)

    def test_diameter_of_4x4_torus(self, torus2d):
        assert torus2d.diameter() == 4

    def test_average_distance_positive(self, torus2d):
        avg = torus2d.average_distance()
        assert 0 < avg <= torus2d.diameter()

    def test_unreachable_raises(self):
        topo = Topology(3, [(0, 1)])
        with pytest.raises(TopologyError):
            topo.distance(0, 2)

    def test_connectivity(self, torus2d):
        assert torus2d.is_connected()
        assert not Topology(3, [(0, 1)]).is_connected()


class TestFailureViews:
    def test_without_links_removes_direction(self, torus2d):
        degraded = torus2d.without_links([(0, 1)])
        assert not degraded.has_link(0, 1)
        assert degraded.has_link(1, 0)
        assert degraded.n_nodes == torus2d.n_nodes

    def test_without_nodes_isolates(self, torus2d):
        degraded = torus2d.without_nodes([5])
        assert degraded.neighbors(5) == ()
        assert degraded.in_neighbors(5) == ()
        assert degraded.n_nodes == torus2d.n_nodes

    def test_degraded_still_routes_around(self, torus2d):
        degraded = torus2d.without_links([(0, 1), (1, 0)])
        # The torus has plenty of redundancy.
        assert degraded.distance(0, 1) == 3

    def test_coordinates_unavailable_on_generic(self, line3):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            line3.coordinates(0)
