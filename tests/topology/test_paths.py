"""Tests for shortest-path DAGs, counting and enumeration."""

import math

import pytest

from repro.topology import (
    ShortestPathDag,
    TorusTopology,
    count_shortest_paths,
    enumerate_shortest_paths,
    is_minimal_path,
    is_valid_path,
    path_links,
)


class TestShortestPathDag:
    def test_next_hops_reduce_distance(self, torus2d):
        dag = ShortestPathDag(torus2d, dst=10)
        for node in torus2d.nodes():
            if node == 10:
                continue
            for nxt in dag.next_hops(node):
                assert dag.dist[nxt] == dag.dist[node] - 1

    def test_next_hop_count_matches_free_dimensions(self):
        topo = TorusTopology((5, 5))
        dag = ShortestPathDag(topo, dst=topo.node_at((2, 2)))
        # From (0, 0), both dimensions still need correcting.
        assert len(dag.next_hops(topo.node_at((0, 0)))) == 2
        # From (2, 0) only the second dimension is free.
        assert len(dag.next_hops(topo.node_at((2, 0)))) == 1


class TestCounting:
    def test_identity(self, torus2d):
        assert count_shortest_paths(torus2d, 3, 3) == 1

    def test_one_hop(self, torus2d):
        assert count_shortest_paths(torus2d, 0, 1) == 1

    def test_multinomial_2d(self):
        # Displacement (2, 2) in a large torus: C(4, 2) = 6 interleavings.
        topo = TorusTopology((8, 8))
        src = topo.node_at((0, 0))
        dst = topo.node_at((2, 2))
        assert count_shortest_paths(topo, src, dst) == 6

    def test_paper_1680_paths_claim(self):
        # §2.2.2: a (3, 3, 3) displacement has 9!/(3!3!3!) = 1680 minimal
        # paths — the paper's "average flow has 1,680 paths" figure.
        topo = TorusTopology((8, 8, 8))
        src = topo.node_at((0, 0, 0))
        dst = topo.node_at((3, 3, 3))
        assert count_shortest_paths(topo, src, dst) == 1680
        assert 1680 == math.factorial(9) // math.factorial(3) ** 3

    def test_wrap_tie_doubles_paths(self):
        # Offset exactly k/2: both ring directions are minimal.
        topo = TorusTopology((4, 8))
        src = topo.node_at((0, 0))
        dst = topo.node_at((2, 0))
        assert count_shortest_paths(topo, src, dst) == 2

    def test_disconnected_returns_zero(self):
        from repro.topology import Topology

        topo = Topology(3, [(0, 1)])
        assert count_shortest_paths(topo, 0, 2) == 0


class TestEnumeration:
    def test_enumerates_all(self, torus2d):
        src, dst = 0, 5  # displacement (1, 1): 2 paths
        paths = list(enumerate_shortest_paths(torus2d, src, dst, limit=100))
        assert len(paths) == count_shortest_paths(torus2d, src, dst)
        assert all(is_minimal_path(torus2d, p) for p in paths)
        assert len({tuple(p) for p in paths}) == len(paths)

    def test_limit_respected(self):
        topo = TorusTopology((8, 8))
        paths = list(
            enumerate_shortest_paths(
                topo, topo.node_at((0, 0)), topo.node_at((3, 3)), limit=5
            )
        )
        assert len(paths) == 5

    def test_identity_path(self, torus2d):
        assert list(enumerate_shortest_paths(torus2d, 2, 2)) == [[2]]


class TestPathValidation:
    def test_valid_path(self, torus2d):
        assert is_valid_path(torus2d, [0, 1, 2])
        assert not is_valid_path(torus2d, [0, 2])
        assert not is_valid_path(torus2d, [])

    def test_minimal_path(self, torus2d):
        assert is_minimal_path(torus2d, [0, 1, 5])
        # Valid but not minimal (detour).
        assert not is_minimal_path(torus2d, [0, 1, 0, 4])

    def test_path_links(self, torus2d):
        links = path_links(torus2d, [0, 1, 5])
        assert links == [torus2d.link_id(0, 1), torus2d.link_id(1, 5)]
