"""Tests for statistics helpers, channel-load analysis and table printers."""

import pytest

from repro.analysis import (
    SummaryStats,
    cdf_at,
    channel_loads,
    empirical_cdf,
    format_comparison,
    format_series,
    format_table,
    ks_distance,
    median,
    normalized_against,
    percentile,
    saturation_throughput,
    throughput_table,
)
from repro.errors import ReproError
from repro.routing import DestinationTagRouting, RandomPacketSpraying, ValiantLoadBalancing
from repro.topology import TorusTopology
from repro.workloads import STANDARD_PATTERNS, TornadoPattern, UniformPattern


class TestStats:
    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 99) == pytest.approx(99.01)
        assert median([1, 2, 3]) == 2

    def test_percentile_validation(self):
        with pytest.raises(ReproError):
            percentile([], 50)
        with pytest.raises(ReproError):
            percentile([1], 150)

    def test_empirical_cdf(self):
        xs, ps = empirical_cdf([3, 1, 2])
        assert list(xs) == [1, 2, 3]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_at(self):
        assert cdf_at([1, 2, 3, 4], 2.5) == 0.5

    def test_summary(self):
        stats = SummaryStats.of([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.max == 4.0
        assert set(stats.row()) == {"count", "mean", "p50", "p95", "p99", "max"}

    def test_summary_empty_is_safe(self):
        # Empty-safe: telemetry exports must not raise on a dry run.
        stats = SummaryStats.of([])
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.to_dict() == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_normalized_against(self):
        out = normalized_against({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}
        with pytest.raises(ReproError):
            normalized_against({"a": 1.0}, "zzz")

    def test_ks_distance(self):
        same = ks_distance([1, 2, 3], [1, 2, 3])
        assert same == 0.0
        far = ks_distance([0, 0, 0], [10, 10, 10])
        assert far == 1.0
        assert 0 < ks_distance([1, 2, 3, 4], [2, 3, 4, 5]) < 1


class TestChannelLoad:
    @pytest.fixture
    def cube8(self):
        return TorusTopology((8, 8))

    def test_uniform_minimal_is_one(self, cube8):
        # The classic normalization: uniform + minimal routing saturates at
        # exactly one link's worth of injection per node (gamma = k/8 = 1).
        rps = RandomPacketSpraying(cube8)
        theta = saturation_throughput(rps, UniformPattern().matrix(cube8))
        assert theta == pytest.approx(1.0, abs=0.05)

    def test_tornado_exact_values(self, cube8):
        # Figure 2 row: tornado is 0.33 for minimal routing, 0.5 for VLB.
        tornado = TornadoPattern().matrix(cube8)
        assert saturation_throughput(
            DestinationTagRouting(cube8), tornado
        ) == pytest.approx(1 / 3, abs=0.01)
        assert saturation_throughput(
            ValiantLoadBalancing(cube8), tornado
        ) == pytest.approx(0.5, abs=0.03)

    def test_vlb_uniform_half(self, cube8):
        vlb = ValiantLoadBalancing(cube8)
        theta = saturation_throughput(vlb, UniformPattern().matrix(cube8))
        assert theta == pytest.approx(0.5, abs=0.03)

    def test_nearest_neighbor_locality_bonus(self, cube8):
        from repro.workloads import NearestNeighborPattern

        rps = RandomPacketSpraying(cube8)
        theta = saturation_throughput(rps, NearestNeighborPattern().matrix(cube8))
        assert theta == pytest.approx(4.0, abs=0.01)

    def test_loads_vector_shape(self, torus2d):
        rps = RandomPacketSpraying(torus2d)
        loads = channel_loads(rps, UniformPattern().matrix(torus2d))
        assert loads.shape == (torus2d.n_links,)
        assert loads.min() >= 0

    def test_table_requires_shared_topology(self, torus2d):
        other = TorusTopology((4, 4))
        with pytest.raises(ValueError):
            throughput_table(
                [RandomPacketSpraying(torus2d), RandomPacketSpraying(other)],
                [UniformPattern()],
            )

    def test_full_table_shape(self, torus2d):
        protocols = [RandomPacketSpraying(torus2d), ValiantLoadBalancing(torus2d)]
        patterns = [STANDARD_PATTERNS["uniform"], STANDARD_PATTERNS["tornado"]]
        table = throughput_table(protocols, patterns, include_worst_case=True)
        assert set(table) == {"uniform", "tornado", "worst-case"}
        assert set(table["uniform"]) == {"rps", "vlb"}


class TestFormatting:
    def test_format_table(self):
        text = format_table(
            "Title", ["a", "b"], {"row1": [1.0, 2.0], "row2": [3.0, 4.5]}
        )
        assert "Title" in text
        assert "row1" in text and "4.50" in text

    def test_format_series(self):
        text = format_series("S", "x", [1, 2], {"y": [0.5, 0.75]})
        assert "0.750" in text

    def test_format_comparison(self):
        text = format_comparison("C", {"m": 1.0}, paper={"m": 1.1})
        assert "measured=1.000" in text and "paper=1.100" in text
