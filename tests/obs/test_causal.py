"""Causal critical-path tracing: the decomposition is exact, everywhere.

The tentpole's acceptance bar: for every completed flow, pacing +
serialization + queueing + propagation + control-wait + host-wait +
retransmit-wait must equal the measured FCT within 1 ns (the construction
owes 0), on the Figure 7 workload, serially AND sharded — and a sharded
run's decompositions must be byte-identical to the serial run's.
"""

import types

import pytest

from repro.distsim import canonical_metrics, run_sharded_simulation
from repro.obs import COMPONENT_NAMES, ObsSession, PacketObs, check_decomposition
from repro.obs.report import explain_report
from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.workloads import FixedSize, poisson_trace

pytestmark = pytest.mark.obs


def _fig7_workload():
    """The Figure 7 cross-validation workload (see ``_run_crossval``)."""
    topology = TorusTopology((4, 4, 4))
    trace = poisson_trace(
        topology, 60, 150_000, sizes=FixedSize(1_000_000), seed=7
    )
    return topology, trace


def _fig7_config(**overrides):
    base = dict(
        stack="r2c2", mtu_payload=8192, control_plane="per_node", seed=7, obs=True
    )
    base.update(overrides)
    return SimConfig(**base)


class TestExactDecomposition:
    def test_fig7_serial_sums_exactly(self):
        topology, trace = _fig7_workload()
        metrics = run_simulation(topology, trace, _fig7_config())
        flow_obs = metrics.flow_obs
        assert flow_obs, "no flows completed with obs records"
        for record in flow_obs.values():
            # tolerance 0: the decomposition is exact by construction
            # (the acceptance criterion's +/-1 ns is headroom we don't use).
            assert check_decomposition(record, tolerance_ns=0) is None
            assert set(record["components"]) == set(COMPONENT_NAMES)

    def test_fig7_sharded_k4_matches_serial(self):
        topology, trace = _fig7_workload()
        serial = run_simulation(topology, trace, _fig7_config())
        sharded = run_sharded_simulation(
            topology, trace, _fig7_config(), shards=4, executor="virtual"
        )
        assert sharded.metrics.flow_obs == serial.flow_obs
        for record in sharded.metrics.flow_obs.values():
            assert check_decomposition(record, tolerance_ns=0) is None

    @pytest.mark.parametrize("stack", ["r2c2", "tcp"])
    def test_lossy_reliable_decomposition_still_exact(self, stack):
        topology = TorusTopology((4, 4))
        trace = poisson_trace(topology, 40, 8_000, seed=5)
        config = SimConfig(
            stack=stack,
            control_plane="per_node",
            reliable=(stack == "r2c2"),
            loss_rate=0.03,
            seed=5,
            obs=True,
        )
        metrics = run_simulation(topology, trace, config)
        assert metrics.flow_obs
        retransmitted = 0
        for record in metrics.flow_obs.values():
            assert check_decomposition(record, tolerance_ns=0) is None
            retransmitted += record["components"]["retransmit_wait_ns"] > 0
        if stack == "r2c2":
            # 3% wire loss must surface as retransmit-wait somewhere.
            # (TCP's loss recovery is ACK-clocked, so its recovery time
            # lands in the pacing remainder by design.)
            assert retransmitted > 0

    def test_obs_does_not_perturb_the_simulation(self):
        topology, trace = _fig7_workload()
        plain = run_simulation(topology, trace, _fig7_config(obs=False))
        observed = run_simulation(topology, trace, _fig7_config())
        assert canonical_metrics(plain) == canonical_metrics(observed)
        assert plain.flow_obs is None
        assert observed.flow_obs is not None


class TestRecords:
    def test_critical_path_and_top_hops(self):
        topology, trace = _fig7_workload()
        metrics = run_simulation(topology, trace, _fig7_config())
        for record in metrics.flow_obs.values():
            hops = record["critical_path"]
            assert hops, "completing packet traversed no links?"
            # The completing packet's per-hop queueing sums to the
            # flow-level queueing component.
            assert (
                sum(h["queue_ns"] for h in hops)
                == record["components"]["queueing_ns"]
            )
            top = record["top_queue_hops"]
            assert len(top) <= 5
            totals = [h["queue_ns"] for h in top]
            assert totals == sorted(totals, reverse=True)

    def test_explain_report_renders_and_checks(self):
        topology, trace = _fig7_workload()
        metrics = run_simulation(topology, trace, _fig7_config())
        lines, errors = explain_report(metrics.flow_obs, check=True)
        assert errors == []
        text = "\n".join(lines)
        assert "pacing" in text and "queueing" in text
        # Single-flow filter narrows the report to that flow.
        some_id = next(iter(metrics.flow_obs))
        only, errors = explain_report(
            metrics.flow_obs, flow_ids=[some_id], check=True
        )
        assert errors == []
        assert f"flow {some_id} " in "\n".join(only)
        assert len(only) < len(lines)


class TestSenderAccounting:
    """Unit-level checks of the stall/wait interval bookkeeping."""

    def test_stall_intervals_are_disjoint_and_idempotent(self):
        session = ObsSession()
        session.on_stall(1, 100)
        session.on_stall(1, 250)  # already stalled: no nested interval
        session.on_resume(1, 400)
        session.on_resume(1, 500)  # already resumed: no-op
        session.on_stall(1, 600)
        session.on_resume(1, 650)
        assert session._sender(1).ctl_ns == 300 + 50

    def test_injection_snapshots_freeze_past_waits(self):
        session = ObsSession()
        session.on_host_wait(1, 40)
        session.on_rto_wait(1, 7)
        flow = types.SimpleNamespace(flow_id=1)
        packet = types.SimpleNamespace(obs=None)
        session.on_inject(flow, packet, now_ns=1000)
        # Waits accrued after injection must not leak into this packet.
        session.on_host_wait(1, 999)
        assert packet.obs.inject_ns == 1000
        assert packet.obs.host_ns == 40
        assert packet.obs.rto_ns == 7
        assert packet.obs.ctl_ns == 0

    def test_completion_freezes_from_completing_packet(self):
        session = ObsSession()
        flow = types.SimpleNamespace(
            flow_id=3,
            src=0,
            dst=5,
            size_bytes=1000,
            start_ns=100,
            completed_ns=900,
        )
        obs = PacketObs(inject_ns=300, ctl_ns=50, host_ns=0, rto_ns=0)
        obs.queue_ns, obs.ser_ns, obs.prop_ns = 200, 300, 100
        obs.hops = [(0, 1, 150), (1, 5, 50)]
        packet = types.SimpleNamespace(obs=obs)
        session.on_delivered(flow, packet, now_ns=900)
        # A later delivery at a non-completion time must not overwrite.
        session.on_delivered(flow, packet, now_ns=950)
        (record,) = session.results().values()
        assert record["fct_ns"] == 800
        # pacing = inject - start - ctl - host - rto = 300-100-50 = 150
        assert record["components"]["pacing_ns"] == 150
        assert check_decomposition(record, tolerance_ns=0) is None

    def test_merge_unions_disjoint_shards_sorted(self):
        a = {4: {"flow_id": 4}, 1: {"flow_id": 1}}
        b = {2: {"flow_id": 2}}
        merged = ObsSession.merge([a, b, {}])
        assert list(merged) == [1, 2, 4]
