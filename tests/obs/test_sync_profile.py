"""Distsim sync profiler: where did the sharded wall clock go?

The profiler is observability-only: wall-clock quantities live solely on
``DistSimResult.sync_profile`` (never inside merged metrics or task
results, which must stay byte-identical across executors), and the
simulated-time quantities it reports are deterministic.
"""

import pytest

from repro.distsim import canonical_metrics, run_sharded_simulation
from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.workloads import poisson_trace

pytestmark = [pytest.mark.obs, pytest.mark.distsim]


def _sharded(shards=4, executor="virtual"):
    topology = TorusTopology((4, 4))
    trace = poisson_trace(topology, 40, 8_000, seed=3)
    config = SimConfig(stack="r2c2", control_plane="per_node", seed=3)
    return (
        run_sharded_simulation(
            topology, trace, config, shards=shards, executor=executor
        ),
        topology,
        trace,
        config,
    )


class TestSyncProfile:
    def test_profile_shape_and_consistency(self):
        result, *_ = _sharded()
        profile = result.sync_profile
        assert profile is not None
        assert profile["rounds"] == result.rounds > 0
        assert profile["boundary_messages"] == result.boundary_messages
        assert profile["lookahead_ns"] > 0
        # Windows are at least the lookahead on a busy fabric but can jump
        # past it when every shard's next event is farther out, so the
        # mean is only bounded below.
        assert profile["mean_window_ns"] > 0
        assert 0.0 < profile["lookahead_utilization"] <= 1.0
        assert profile["blocked_s"] >= 0.0
        assert profile["exec_s"] > 0.0
        shards = profile["shards"]
        assert len(shards) == result.shards
        for shard in shards:
            assert shard["rounds"] == profile["rounds"]
            assert shard["blocked_s"] >= 0.0
        # Shard boundary traffic is conserved: everything sent arrives.
        assert sum(s["boundary_out"] for s in shards) == sum(
            s["boundary_in"] for s in shards
        )

    def test_simulated_time_quantities_are_deterministic(self):
        a, *_ = _sharded()
        b, *_ = _sharded()

        def deterministic(profile):
            return {
                k: profile[k]
                for k in (
                    "rounds",
                    "boundary_messages",
                    "lookahead_ns",
                    "mean_window_ns",
                    "lookahead_utilization",
                )
            }

        assert deterministic(a.sync_profile) == deterministic(b.sync_profile)

    def test_wall_clock_stays_out_of_merged_results(self):
        result, topology, trace, config = _sharded()
        serial = run_simulation(topology, trace, config)
        # The sync profile must not leak into the byte-identity surface.
        assert canonical_metrics(result.metrics) == canonical_metrics(serial)
        assert "sync_profile" not in canonical_metrics(result.metrics)

    def test_process_executor_profiles_too(self):
        result, *_ = _sharded(shards=2, executor="process")
        profile = result.sync_profile
        assert profile["rounds"] > 0
        assert len(profile["shards"]) == 2
        assert profile["exec_s"] > 0.0
