"""Crash flight recorder: bounded rings, crash dumps, corpus attachment.

The recorder's contract: opt-in, deterministic (simulated time only),
bounded (oldest events evicted, eviction counted), dumped on crash via
``exc.repro_flight`` and on success via ``metrics.flight_dump`` — and a
fuzzer-found reproducer ships its dump inside the corpus entry.
"""

import json

import pytest

from repro.distsim import canonical_metrics
from repro.obs import FLIGHT_SCHEMA, FlightRecorder
from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.workloads import poisson_trace

pytestmark = pytest.mark.obs


class TestRing:
    def test_ring_bounds_and_counts_evictions(self):
        flight = FlightRecorder(limit=4)
        for i in range(10):
            flight.record("engine", "tick", i)
        flight.record("stack", "send", 99, flow=1)
        dump = flight.dump()
        assert dump["schema"] == FLIGHT_SCHEMA
        assert dump["limit"] == 4
        engine = dump["subsystems"]["engine"]
        assert [e["t_ns"] for e in engine["events"]] == [6, 7, 8, 9]
        assert engine["dropped"] == 6
        assert dump["subsystems"]["stack"]["events"] == [
            {"t_ns": 99, "kind": "send", "flow": 1}
        ]
        assert len(flight) == 5

    def test_dump_reason_and_json_round_trip(self):
        flight = FlightRecorder()
        flight.record("auditor", "violation", 42, rule="conservation")
        dump = flight.dump(reason="audit failure")
        assert dump["reason"] == "audit failure"
        assert json.loads(json.dumps(dump, sort_keys=True)) == dump

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(limit=0)


def _run(flight: bool):
    topology = TorusTopology((4, 4))
    trace = poisson_trace(topology, 40, 8_000, seed=9)
    return run_simulation(
        topology, trace, SimConfig(stack="r2c2", seed=9, flight=flight)
    )


class TestSimIntegration:
    def test_successful_run_lands_dump_on_metrics(self):
        metrics = _run(flight=True)
        dump = metrics.flight_dump
        assert dump is not None and dump["schema"] == FLIGHT_SCHEMA
        assert "engine" in dump["subsystems"]
        total = sum(len(s["events"]) for s in dump["subsystems"].values())
        assert total > 0
        # Deterministic: same seeds, byte-identical dump.
        again = _run(flight=True).flight_dump
        assert json.dumps(dump, sort_keys=True) == json.dumps(again, sort_keys=True)

    def test_flight_does_not_perturb_the_simulation(self):
        assert canonical_metrics(_run(flight=False)) == canonical_metrics(
            _run(flight=True)
        )
        assert _run(flight=False).flight_dump is None

    def test_crash_carries_the_dump(self, monkeypatch):
        from repro.sim.stacks.r2c2 import R2C2Stack

        real_deliver = R2C2Stack.deliver

        def exploding_deliver(self, packet):
            if self.loop.now > 20_000:
                raise RuntimeError("injected mid-run fault")
            return real_deliver(self, packet)

        monkeypatch.setattr(R2C2Stack, "deliver", exploding_deliver)
        with pytest.raises(RuntimeError) as excinfo:
            _run(flight=True)
        dump = excinfo.value.repro_flight
        assert dump["schema"] == FLIGHT_SCHEMA
        assert dump["reason"].startswith("RuntimeError")
        # Without the recorder armed there is nothing to attach.
        with pytest.raises(RuntimeError) as excinfo:
            _run(flight=False)
        assert not hasattr(excinfo.value, "repro_flight")


class TestFuzzCorpusAttachment:
    def test_shrunk_reproducer_ships_flight_dump(self, tmp_path, monkeypatch):
        """Acceptance: a fuzz corpus entry carries the failing run's dump."""
        from repro.fuzz.corpus import Corpus
        from repro.fuzz.fuzzer import FuzzConfig, FuzzReport, _shrink_and_record
        from repro.fuzz.generator import generate_scenario
        from repro.sim.stacks.r2c2 import R2C2Stack

        real_deliver = R2C2Stack.deliver

        def exploding_deliver(self, packet):
            if self.loop.now > 20_000:
                raise RuntimeError("injected mid-run fault")
            return real_deliver(self, packet)

        monkeypatch.setattr(R2C2Stack, "deliver", exploding_deliver)
        # Any generated r2c2 sim scenario reaches the poisoned deliver path.
        for seed in range(50):
            scenario = generate_scenario(seed, f"boom-{seed}")
            params = scenario.params_dict
            if scenario.kind == "sim" and params.get("stack") == "r2c2":
                break
        else:  # pragma: no cover - generator is ~2/3 serial r2c2 sims
            pytest.fail("no r2c2 sim scenario in 50 seeds")

        config = FuzzConfig(seed=0, differential=False, corpus_dir=tmp_path)
        report = FuzzReport(config=config)
        corpus = Corpus(tmp_path)
        entry = _shrink_and_record(
            scenario, {"crash"}, config, report, corpus, set()
        )
        assert entry is not None
        crash = [v for v in entry.verdicts if v.oracle == "crash" and not v.ok]
        assert crash and crash[0].flight is not None
        assert crash[0].flight["schema"] == FLIGHT_SCHEMA

        # The dump is persisted in the corpus file and survives reload.
        (path,) = list(tmp_path.glob("*.json"))
        on_disk = json.loads(path.read_text())
        stored = [v for v in on_disk["verdicts"] if v["oracle"] == "crash"]
        assert stored and stored[0]["flight"]["schema"] == FLIGHT_SCHEMA
        reloaded = corpus.load(path)
        reloaded_crash = [
            v for v in reloaded.verdicts if v.oracle == "crash" and not v.ok
        ]
        assert reloaded_crash and reloaded_crash[0].flight is not None
