"""``Scenario.shards`` as pure executor policy in the campaign runner.

``shards`` must not perturb fingerprints (so cached serial results satisfy
sharded requests and vice versa), must not perturb result bytes (the
invariant that justifies the exclusion), and must compose with the
checkpoint/resume machinery — a killed sharded campaign resumes to the
same bytes as an uninterrupted serial reference.
"""

import json

import pytest

from repro.errors import ExperimentError, SimulationError
from repro.experiments import Campaign, ExecutorConfig, Scenario, run_campaign
from repro.experiments.spec import EXECUTOR_POLICY_FIELDS
from repro.experiments.tasks import execute_task
from repro.validation import FaultEvent

pytestmark = pytest.mark.distsim

_SIM_PARAMS = {
    "stack": "r2c2",
    "control_plane": "per_node",
    "n_flows": 12,
    "tau_ns": 5_000,
}


def _scenario(name="cell", shards=1, **overrides):
    params = dict(_SIM_PARAMS, **overrides.pop("params", {}))
    return Scenario(
        name=name,
        kind="sim",
        topology="torus",
        dims=(3, 4),
        params=params,
        shards=shards,
        **overrides,
    )


def _single_task(scenario, seed=21):
    return Campaign(name="c", scenarios=(scenario,), seed=seed).expand()[0]


def test_shards_is_declared_executor_policy():
    assert "shards" in EXECUTOR_POLICY_FIELDS


def test_shards_outside_fingerprints_and_seeds():
    serial = _scenario()
    sharded = _scenario(shards=4)
    assert serial.fingerprint() == sharded.fingerprint()
    t_serial, t_sharded = _single_task(serial), _single_task(sharded)
    assert t_serial.fingerprint() == t_sharded.fingerprint()
    assert t_serial.seed == t_sharded.seed


def test_shards_survives_spec_round_trip():
    scenario = _scenario(shards=2)
    clone = Scenario.from_json(scenario.to_json())
    assert clone.shards == 2
    assert clone.fingerprint() == scenario.fingerprint()


def test_invalid_shards_rejected():
    with pytest.raises(ExperimentError, match="shards"):
        _scenario(shards=0)


def test_sharded_task_result_is_byte_identical():
    """The payoff that legitimizes the fingerprint exclusion."""
    serial = execute_task(_single_task(_scenario()))
    sharded = execute_task(_single_task(_scenario(shards=2)))
    assert json.dumps(serial, sort_keys=True) == json.dumps(sharded, sort_keys=True)


def test_incompatible_sharded_config_fails_loudly():
    """`shards` never silently changes semantics: an r2c2 scenario without
    control_plane='per_node' in its (fingerprinted) params refuses to shard
    rather than flipping the control plane under the cache key."""
    bad = _scenario(shards=2, params={"control_plane": "shared"})
    with pytest.raises(SimulationError, match="per_node"):
        execute_task(_single_task(bad))


def test_kill_then_resume_sharded_campaign(tmp_path):
    """Kill a sharded campaign mid-run; the resumed run is byte-identical
    to an uninterrupted *serial* reference and shares its cache records."""
    sharded = Campaign(
        name="dist",
        scenarios=(
            _scenario("a", shards=2),
            _scenario("b", shards=2, params={"sim_seed": 9}),
            _scenario("c", shards=2, params={"n_flows": 8}),
        ),
        seed=5,
    )
    serial = Campaign(
        name="dist",
        scenarios=(
            _scenario("a"),
            _scenario("b", params={"sim_seed": 9}),
            _scenario("c", params={"n_flows": 8}),
        ),
        seed=5,
    )
    reference = run_campaign(
        serial, ExecutorConfig(workers=1), cache_dir=tmp_path / "ref"
    )
    assert reference.complete

    cache_dir = tmp_path / "cache"
    killed = run_campaign(
        sharded,
        ExecutorConfig(workers=1),
        cache_dir=cache_dir,
        fault_events=[FaultEvent(at_ns=1, kind="kill_campaign", target=None)],
    )
    assert killed.status == "interrupted"
    assert killed.manifest["counts"]["computed"] == 1
    assert killed.manifest["counts"]["pending"] == 2

    resumed = run_campaign(sharded, ExecutorConfig(workers=1), cache_dir=cache_dir)
    assert resumed.complete
    assert resumed.manifest["counts"]["cache_hits"] == 1
    assert resumed.manifest["counts"]["computed"] == 2

    ref_bytes = json.dumps(reference.results, sort_keys=True).encode()
    res_bytes = json.dumps(resumed.results, sort_keys=True).encode()
    assert res_bytes == ref_bytes


def test_serial_cache_satisfies_sharded_request(tmp_path):
    """A cache populated serially is hit — not recomputed — by the sharded
    variant of the same campaign (and vice versa by symmetry)."""
    serial = Campaign(name="x", scenarios=(_scenario("a"),), seed=3)
    sharded = Campaign(name="x", scenarios=(_scenario("a", shards=2),), seed=3)
    cache_dir = tmp_path / "cache"
    first = run_campaign(serial, ExecutorConfig(workers=1), cache_dir=cache_dir)
    second = run_campaign(sharded, ExecutorConfig(workers=1), cache_dir=cache_dir)
    assert second.manifest["counts"]["cache_hits"] == 1
    assert second.manifest["counts"]["computed"] == 0
    assert json.dumps(first.results, sort_keys=True) == json.dumps(
        second.results, sort_keys=True
    )
