"""Partition invariants: shards tile the node set, internal + cut edges
tile the link set, and partitioning composes with failure views.

The conservative protocol's correctness leans on exactly these facts: every
link is either simulated inside one shard or carried by a boundary message
(never both, never neither), and the lookahead is derived from the true cut.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import (
    FoldedClosTopology,
    HypercubeTopology,
    MeshTopology,
    TorusTopology,
)

pytestmark = pytest.mark.distsim

_TOPOLOGIES = [
    TorusTopology((4, 4)),
    TorusTopology((2, 3, 4)),
    MeshTopology((5, 3)),
    HypercubeTopology(4),
    FoldedClosTopology(n_hosts=16, radix=8),
]


def _link_set(links):
    return {(l.src, l.dst) for l in links}


@given(
    topo_idx=st.integers(min_value=0, max_value=len(_TOPOLOGIES) - 1),
    k=st.integers(min_value=1, max_value=8),
    strategy=st.sampled_from(["auto", "blocks"]),
)
@settings(max_examples=60, deadline=None)
def test_edges_tile_the_link_set(topo_idx, k, strategy):
    """Union of per-shard internal edges and cut edges == all links, disjoint."""
    topology = _TOPOLOGIES[topo_idx]
    partition = topology.partition(k, strategy=strategy)

    pieces = [_link_set(partition.cut_edges())]
    for shard in range(k):
        pieces.append(_link_set(partition.internal_edges(shard)))
    combined = set().union(*pieces)
    assert combined == _link_set(topology.links)
    assert sum(len(p) for p in pieces) == len(topology.links)  # disjoint


@given(
    topo_idx=st.integers(min_value=0, max_value=len(_TOPOLOGIES) - 1),
    k=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_shards_tile_the_node_set(topo_idx, k):
    topology = _TOPOLOGIES[topo_idx]
    partition = topology.partition(k)
    seen = []
    for shard in range(k):
        members = partition.nodes_of(shard)
        assert members, "no shard may be empty"
        assert list(members) == sorted(members)
        for node in members:
            assert partition.shard_of(node) == shard
        seen.extend(members)
    assert sorted(seen) == list(topology.nodes())


@given(
    k=st.integers(min_value=1, max_value=4),
    drop=st.sets(st.integers(min_value=0, max_value=15), max_size=4),
)
@settings(max_examples=30, deadline=None)
def test_partition_composes_with_node_failures(k, drop):
    """Partitioning a degraded view only sees surviving links, and the
    edge-tiling invariant still holds."""
    degraded = TorusTopology((4, 4)).without_nodes(drop)
    partition = degraded.partition(k)
    pieces = [_link_set(partition.cut_edges())]
    for shard in range(k):
        pieces.append(_link_set(partition.internal_edges(shard)))
    assert set().union(*pieces) == _link_set(degraded.links)
    for src, dst in _link_set(partition.cut_edges()):
        assert src not in drop and dst not in drop


def test_partition_composes_with_link_failures():
    topology = TorusTopology((4, 4))
    failed = [(0, 1), (1, 0), (4, 5)]
    degraded = topology.without_links(failed)
    partition = degraded.partition(2)
    all_edges = _link_set(partition.cut_edges()) | set().union(
        *(_link_set(partition.internal_edges(s)) for s in range(2))
    )
    assert all_edges == _link_set(degraded.links)
    assert not all_edges & set(failed)


def test_lookahead_is_min_cut_latency():
    topology = TorusTopology((4, 4))
    partition = topology.partition(4)
    cut = partition.cut_edges()
    assert cut
    assert partition.lookahead_ns() == min(l.latency_ns for l in cut)


def test_single_shard_has_empty_cut_and_infinite_lookahead():
    partition = TorusTopology((4, 4)).partition(1)
    assert partition.cut_edges() == ()
    assert partition.lookahead_ns() is None


def test_clos_subtree_cut_crosses_only_leaf_spine_links():
    topology = FoldedClosTopology(n_hosts=16, radix=8)
    partition = topology.partition(2)
    hosts = set(topology.hosts())
    for link in partition.cut_edges():
        assert link.src not in hosts and link.dst not in hosts


def test_invalid_shard_counts_rejected():
    topology = TorusTopology((2, 2))
    with pytest.raises(TopologyError):
        topology.partition(0)
    with pytest.raises(TopologyError):
        topology.partition(topology.n_nodes + 1)
