"""Byte-identity of the sharded engine against the serial engine.

These are the tentpole's acceptance checks: for every supported
configuration, a K-shard run must produce *exactly* the serial engine's
flow states, metrics digest and merged telemetry counters for the same
seeds — compared with tolerance zero through the differential-oracle
harness and directly through the canonical equality surface.
"""

import os
import random

import pytest

from repro.distsim import (
    canonical_metrics,
    comparable_snapshot,
    run_sharded_simulation,
    validate_sharded_config,
)
from repro.errors import SimulationError
from repro.sim import SimConfig, run_simulation
from repro.telemetry import Telemetry, TelemetryConfig
from repro.topology import FoldedClosTopology, TorusTopology
from repro.validation.oracle import sharded_vs_serial_report
from repro.workloads import poisson_trace
from repro.workloads.generator import FlowArrival

pytestmark = pytest.mark.distsim

_N_CASES = int(os.environ.get("R2C2_VALIDATION_CASES", "4"))


def _serial(topology, trace, config):
    telemetry = Telemetry(TelemetryConfig(metrics=True, trace=False))
    metrics = run_simulation(topology, trace, config, telemetry=telemetry)
    return metrics, telemetry.metrics.snapshot()


def _assert_exact(topology, trace, config, shards, executor="virtual"):
    serial_metrics, serial_snapshot = _serial(topology, trace, config)
    sharded = run_sharded_simulation(
        topology,
        trace,
        config,
        shards=shards,
        executor=executor,
        telemetry_config=TelemetryConfig(metrics=True, trace=False),
    )
    assert canonical_metrics(sharded.metrics) == canonical_metrics(serial_metrics)
    assert comparable_snapshot(sharded.telemetry_snapshot) == comparable_snapshot(
        serial_snapshot
    )
    return sharded


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("stack", ["r2c2", "tcp"])
def test_torus_byte_identical(shards, stack):
    topology = TorusTopology((4, 4))
    trace = poisson_trace(topology, 40, 8_000, seed=3)
    config = (
        SimConfig(stack="r2c2", control_plane="per_node", seed=3)
        if stack == "r2c2"
        else SimConfig(stack="tcp", seed=3)
    )
    result = _assert_exact(topology, trace, config, shards)
    assert result.shards == shards
    assert result.boundary_messages > 0  # the cut actually carried traffic


@pytest.mark.parametrize("shards", [2, 4])
def test_clos_byte_identical(shards):
    topology = FoldedClosTopology(n_hosts=16, radix=8)
    # Host-to-host traffic only: switches neither send nor receive.
    rng = random.Random(11)
    trace = []
    start_ns = 0
    for flow_id in range(30):
        src = rng.randrange(topology.n_hosts)
        dst = rng.randrange(topology.n_hosts - 1)
        if dst >= src:
            dst += 1
        trace.append(
            FlowArrival(
                flow_id=flow_id,
                src=src,
                dst=dst,
                size_bytes=rng.randrange(2_000, 120_000),
                start_ns=start_ns,
            )
        )
        start_ns += rng.randrange(1, 15_000)
    config = SimConfig(stack="r2c2", control_plane="per_node", seed=11)
    _assert_exact(topology, trace, config, shards)


def test_process_executor_byte_identical():
    """The multiprocessing back end produces the same bytes as in-process."""
    topology = TorusTopology((4, 4))
    trace = poisson_trace(topology, 30, 8_000, seed=5)
    config = SimConfig(stack="r2c2", control_plane="per_node", seed=5)
    _assert_exact(topology, trace, config, shards=2, executor="process")


def test_single_shard_degenerates_to_serial():
    """K=1 exercises the windowed protocol with an empty cut."""
    topology = TorusTopology((3, 3))
    trace = poisson_trace(topology, 20, 8_000, seed=7)
    config = SimConfig(stack="tcp", seed=7)
    result = _assert_exact(topology, trace, config, shards=1)
    assert result.lookahead_ns is None
    assert result.boundary_messages == 0


def test_oracle_report_is_exact():
    """The randomized differential oracle passes at tolerance zero."""
    report = sharded_vs_serial_report(n_cases=_N_CASES, seed=0, shards=(2, 4))
    assert report.ok, report.summary()
    assert report.tolerance == 0.0
    assert len(report.cases) == 2 * _N_CASES


def test_rejects_shared_control_plane():
    with pytest.raises(SimulationError, match="per_node"):
        validate_sharded_config(SimConfig(stack="r2c2", control_plane="shared"))


def test_rejects_pfq_and_flight():
    with pytest.raises(SimulationError, match="pfq"):
        validate_sharded_config(SimConfig(stack="pfq"))
    with pytest.raises(SimulationError, match="flight"):
        validate_sharded_config(SimConfig(stack="tcp", flight=True))


def test_accepts_loss_audit_and_trace():
    """Loss, auditing and tracing are simulation semantics and shard exactly."""
    validate_sharded_config(SimConfig(stack="tcp", loss_rate=0.01))
    validate_sharded_config(SimConfig(stack="tcp", audit=True))
    validate_sharded_config(
        SimConfig(stack="tcp"), TelemetryConfig(metrics=True, trace=True)
    )


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("stack", ["r2c2", "tcp"])
def test_lossy_byte_identical(shards, stack):
    """Per-port wire-loss RNG streams reproduce the serial draws exactly."""
    topology = TorusTopology((4, 4))
    trace = poisson_trace(topology, 30, 8_000, seed=13)
    config = (
        SimConfig(
            stack="r2c2",
            control_plane="per_node",
            reliable=True,
            loss_rate=0.01,
            seed=13,
        )
        if stack == "r2c2"
        else SimConfig(stack="tcp", loss_rate=0.01, seed=13)
    )
    result = _assert_exact(topology, trace, config, shards)
    assert result.metrics.wire_losses > 0  # the fault actually fired


@pytest.mark.parametrize("shards", [2, 4])
def test_audited_byte_identical(shards):
    """Per-shard auditors merge into the serial run's verdict."""
    topology = TorusTopology((4, 4))
    trace = poisson_trace(topology, 30, 8_000, seed=17)
    config = SimConfig(
        stack="r2c2", control_plane="per_node", audit=True, seed=17
    )
    result = _assert_exact(topology, trace, config, shards)
    serial_metrics, _ = _serial(topology, trace, config)
    assert result.metrics.audit is not None
    assert result.metrics.audit.ok
    assert result.metrics.audit.violations == serial_metrics.audit.violations
    # Conservation counters sum to the serial run's totals.
    assert (
        result.metrics.audit.packets_propagated
        == serial_metrics.audit.packets_propagated
    )
    assert result.metrics.audit.packets_arrived == serial_metrics.audit.packets_arrived
    assert (
        result.metrics.audit.packets_delivered
        == serial_metrics.audit.packets_delivered
    )
    assert (
        result.metrics.audit.allocations_audited
        == serial_metrics.audit.allocations_audited
    )
