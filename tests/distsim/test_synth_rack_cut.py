"""Sharded-vs-serial byte identity under the rack-aligned cut.

The synth tentpole's distsim acceptance: a K-shard simulation of a
*synthesized* multi-rack fabric, partitioned along rack boundaries (cut =
gateway links, lookahead = gateway latency), must reproduce the serial
engine's canonical metrics and telemetry exactly.
"""

import pytest

from repro.distsim import (
    canonical_metrics,
    comparable_snapshot,
    run_sharded_simulation,
)
from repro.sim import SimConfig, run_simulation
from repro.telemetry import Telemetry, TelemetryConfig
from repro.topology import FabricSpec, synthesize
from repro.topology.partition import partition_topology
from repro.workloads import poisson_trace

pytestmark = [pytest.mark.distsim, pytest.mark.synth]


def _fabric(design="flat", n_racks=4):
    return synthesize(
        FabricSpec(
            design=design,
            rack="torus",
            rack_dims=(2, 2),
            n_racks=n_racks,
            gateway_ports=2,
            seed=5,
        )
    ).topology


@pytest.mark.parametrize("design", ("flat", "ring"))
@pytest.mark.parametrize("shards", (2, 4))
def test_synth_fabric_byte_identical(design, shards):
    topology = _fabric(design)
    trace = poisson_trace(topology, 30, 10_000, seed=7)
    config = SimConfig(stack="tcp", seed=7)

    telemetry = Telemetry(TelemetryConfig(metrics=True, trace=False))
    serial = run_simulation(topology, trace, config, telemetry=telemetry)
    serial_snapshot = telemetry.metrics.snapshot()

    sharded = run_sharded_simulation(
        topology,
        trace,
        config,
        shards=shards,
        executor="virtual",
        telemetry_config=TelemetryConfig(metrics=True, trace=False),
    )
    assert canonical_metrics(sharded.metrics) == canonical_metrics(serial)
    assert comparable_snapshot(sharded.telemetry_snapshot) == comparable_snapshot(
        serial_snapshot
    )
    assert sharded.shards == shards
    assert sharded.boundary_messages > 0


def test_rack_cut_is_what_the_engine_uses():
    """The auto partition of a synthesized fabric is the rack cut, and its
    boundary is exactly the gateway tier."""
    topology = _fabric("flat")
    plan = partition_topology(topology, 4)
    assert plan.assignment == partition_topology(topology, 4, "rack").assignment
    assert plan.lookahead_ns() == 500  # spec.bridge_latency_ns
    for link in plan.cut_edges():
        assert topology.is_bridge_link(link.link_id)
    # Each shard is a whole number of racks.
    for shard in plan.shards():
        racks = {topology.rack_of(node) for node in shard}
        for rack in racks:
            members = [n for n in topology.nodes() if topology.rack_of(n) == rack]
            assert all(plan.shard_of(n) == plan.shard_of(members[0])
                       for n in members)
