"""Sharded tracing: merged per-shard traces equal the serial trace.

Satellite of the repro.obs PR: ``validate_sharded_config`` no longer
rejects tracing.  Each shard records its own ``TraceRecorder``; the
coordinator merges them by ``(time_ns, seq, shard)`` into one document
whose mergeable tracks are content-identical to a serial run's — compared
through :func:`repro.telemetry.canonical_trace_events`, the
order-insensitive equality surface.
"""

import pytest

from repro.distsim import run_sharded_simulation
from repro.sim import SimConfig, run_simulation
from repro.telemetry import (
    MERGEABLE_TRACKS,
    Telemetry,
    TelemetryConfig,
    canonical_trace_events,
)
from repro.topology import TorusTopology
from repro.workloads import poisson_trace

pytestmark = [pytest.mark.distsim, pytest.mark.obs]


def _workload():
    topology = TorusTopology((4, 4))
    trace = poisson_trace(topology, 40, 8_000, seed=3)
    config = SimConfig(stack="r2c2", control_plane="per_node", seed=3)
    return topology, trace, config


def _telemetry_config():
    return TelemetryConfig(metrics=True, trace=True, per_link_series=False)


def _serial_document(topology, trace, config):
    telemetry = Telemetry(_telemetry_config())
    run_simulation(topology, trace, config, telemetry=telemetry)
    return telemetry.trace.to_document()


@pytest.mark.parametrize("shards", [2, 4])
def test_merged_trace_content_identical_to_serial(shards):
    topology, trace, config = _workload()
    serial_doc = _serial_document(topology, trace, config)
    sharded = run_sharded_simulation(
        topology,
        trace,
        config,
        shards=shards,
        executor="virtual",
        telemetry_config=_telemetry_config(),
    )
    assert sharded.trace_document is not None
    assert canonical_trace_events(
        sharded.trace_document, tracks=MERGEABLE_TRACKS
    ) == canonical_trace_events(serial_doc, tracks=MERGEABLE_TRACKS)


def test_process_executor_traces_identically(tmp_path):
    topology, trace, config = _workload()
    serial_doc = _serial_document(topology, trace, config)
    sharded = run_sharded_simulation(
        topology,
        trace,
        config,
        shards=2,
        executor="process",
        telemetry_config=_telemetry_config(),
    )
    assert canonical_trace_events(
        sharded.trace_document, tracks=MERGEABLE_TRACKS
    ) == canonical_trace_events(serial_doc, tracks=MERGEABLE_TRACKS)


def test_untraced_sharded_run_has_no_document():
    topology, trace, config = _workload()
    sharded = run_sharded_simulation(
        topology,
        trace,
        config,
        shards=2,
        executor="virtual",
        telemetry_config=TelemetryConfig(metrics=True, trace=False),
    )
    assert sharded.trace_document is None
