"""Corpus store: content addressing, atomicity of intent, determinism."""

import json

import pytest

from repro.fuzz import Corpus, CorpusEntry, generate_scenario
from repro.validation.verdicts import OracleVerdict

pytestmark = pytest.mark.fuzz


def _entry(seed=11):
    return CorpusEntry(
        scenario=generate_scenario(seed, f"repro-{seed}"),
        verdicts=[
            OracleVerdict(oracle="audit", ok=False, details=("flow 0: short",))
        ],
        signature=(("completed", 9), ("audit", 1)),
        found_from="cafe" * 16,
        shrink_steps=("2 flow(s)", "no storm"),
        root_seed=42,
    )


class TestCorpus:
    def test_add_and_load_round_trip(self, tmp_path):
        corpus = Corpus(tmp_path)
        entry = _entry()
        path = corpus.add(entry)
        assert path.exists() and path.parent == tmp_path
        again = corpus.load(path)
        assert again.scenario == entry.scenario
        assert again.verdicts == entry.verdicts
        assert tuple(again.signature) == tuple(entry.signature)
        assert again.shrink_steps == entry.shrink_steps
        assert again.root_seed == 42

    def test_content_addressed_and_idempotent(self, tmp_path):
        corpus = Corpus(tmp_path)
        entry = _entry()
        p1 = corpus.add(entry)
        p2 = corpus.add(entry)
        assert p1 == p2 and len(corpus) == 1
        assert p1.stem == entry.scenario.fingerprint()[:16]

    def test_deterministic_bytes(self, tmp_path):
        a, b = Corpus(tmp_path / "a"), Corpus(tmp_path / "b")
        pa, pb = a.add(_entry()), b.add(_entry())
        assert pa.read_bytes() == pb.read_bytes()
        data = json.loads(pa.read_text())
        assert set(data) == {
            "schema", "scenario", "verdicts", "signature",
            "found_from", "shrink_steps", "root_seed",
        }

    def test_entries_sorted_and_find_by_prefix(self, tmp_path):
        corpus = Corpus(tmp_path)
        e1, e2 = _entry(1), _entry(2)
        corpus.add(e2)
        corpus.add(e1)
        ids = [e.entry_id for e in corpus.entries()]
        assert ids == sorted(ids) and len(ids) == 2
        assert corpus.find(e1.entry_id[:8]).scenario == e1.scenario
        assert corpus.find("") is None  # ambiguous prefix

    def test_empty_and_missing_dir(self, tmp_path):
        corpus = Corpus(tmp_path / "nope")
        assert corpus.paths() == [] and corpus.entries() == [] and len(corpus) == 0

    def test_unreadable_entry_raises_repro_error(self, tmp_path):
        from repro.errors import ExperimentError

        bad = tmp_path / "deadbeef.json"
        bad.write_text("{not json")
        with pytest.raises(ExperimentError):
            Corpus(tmp_path).load(bad)
