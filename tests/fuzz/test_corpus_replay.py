"""Replay the persisted regression corpus (tests/corpus) against the tree.

Every entry in the checked-in corpus is a shrunk reproducer for a bug
that has since been fixed, so on a healthy tree each one must pass all
of its oracles.  A failure here means a regression resurrected an old
bug — the entry's ``verdicts`` field records what it looked like when
it was filed.
"""

from pathlib import Path

import pytest

from repro.fuzz import Corpus, replay_entry

pytestmark = pytest.mark.fuzz_corpus

_CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"


def _corpus_entries():
    corpus = Corpus(_CORPUS_DIR)
    return [(e.entry_id, e) for e in corpus.entries()]


_ENTRIES = _corpus_entries()


@pytest.mark.skipif(not _ENTRIES, reason="regression corpus is empty")
@pytest.mark.parametrize(
    "entry", [e for _, e in _ENTRIES], ids=[i for i, _ in _ENTRIES]
)
def test_corpus_entry_passes_on_healthy_tree(entry):
    verdicts = replay_entry(entry)
    bad = [(v.oracle, v.details) for v in verdicts if not v.ok]
    assert not bad, f"regression corpus entry {entry.entry_id} failing: {bad}"
