"""Coverage-map semantics and deterministic serialization."""

import pytest

from repro.fuzz import CoverageMap

pytestmark = pytest.mark.fuzz

SIG_A = (("completed", 10), ("drops", 0))
SIG_B = (("completed", 10), ("drops", 3))


class TestCoverageMap:
    def test_observe_new_then_seen(self):
        cov = CoverageMap()
        assert cov.observe(SIG_A) is True
        assert cov.observe(SIG_A) is False
        assert cov.observe(SIG_B) is True
        assert len(cov) == 2
        assert cov.hits(SIG_A) == 2 and cov.hits(SIG_B) == 1
        assert SIG_A in cov and (("x", 1),) not in cov

    def test_round_trip(self):
        cov = CoverageMap()
        cov.observe(SIG_A)
        cov.observe(SIG_A)
        cov.observe(SIG_B)
        again = CoverageMap.from_dict(cov.to_dict())
        assert again.signatures() == cov.signatures()
        assert again.hits(SIG_A) == 2
        assert again.to_json() == cov.to_json()

    def test_json_is_order_independent(self):
        a = CoverageMap()
        a.observe(SIG_A)
        a.observe(SIG_B)
        b = CoverageMap()
        b.observe(SIG_B)
        b.observe(SIG_A)
        assert a.to_json() == b.to_json()

    def test_save_load(self, tmp_path):
        cov = CoverageMap()
        cov.observe(SIG_A)
        path = tmp_path / "cov.json"
        cov.save(path)
        assert CoverageMap.load(path).to_json() == cov.to_json()

    def test_merge(self):
        a = CoverageMap()
        a.observe(SIG_A)
        b = CoverageMap()
        b.observe(SIG_A)
        b.observe(SIG_B)
        a.merge(b)
        assert len(a) == 2 and a.hits(SIG_A) == 2
