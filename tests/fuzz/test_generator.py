"""Generator and mutator properties: determinism and validity by construction.

The fuzzer's contract with the rest of the stack is that *every* scenario
it builds — generated or mutated, any seed — is a valid, runnable spec.
These tests hold the genome/assembly chokepoint to that, and to byte-level
determinism: the same seed must always produce the identical spec.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import Campaign, Scenario
from repro.experiments.tasks import _apply_failure_storm, _build_topology, _make_trace
from repro.fuzz import (
    SAFETY_HORIZON_NS,
    assemble,
    generate_scenario,
    genome_of,
    mutate_scenario,
    sharding_eligible,
)
from repro.sim import SimConfig

pytestmark = pytest.mark.fuzz

seeds = st.integers(min_value=0, max_value=2**63 - 1)


def _check_runnable(scenario: Scenario) -> None:
    """A spec is valid iff every construction step up to the simulation
    itself accepts it (topology, storm, trace, SimConfig; for selection
    kind: topology, objective, protocol pool, search budget; for churn
    kind: topology, bounded op budget, fallback only on storm-safe
    grids)."""
    params = scenario.params_dict
    campaign = Campaign(name="probe", scenarios=(scenario,), seed=1)
    (task,) = campaign.expand()
    if scenario.kind == "churn":
        topology = _build_topology(task)
        # Bounded replay: the fuzz loop's safety contract for this kind.
        assert 0 < int(params["n_ops"]) <= 500
        assert 0 < int(params["max_flows"]) <= 64
        fallback_at = params.get("fallback_at")
        if fallback_at is not None:
            assert 0 <= int(fallback_at) < int(params["n_ops"])
            # Injection rides only grids that survive a symmetric loss.
            assert scenario.topology != "clos" and topology.n_nodes >= 8
            assert int(params["fail_links"]) >= 1
        return
    if scenario.kind == "selection":
        from repro.experiments.tasks import _make_objective
        from repro.routing.base import make_protocol

        topology = _build_topology(task)
        _make_objective(params)  # must resolve
        for protocol in params["protocols"]:
            make_protocol(protocol, topology)  # every candidate routable
        assert params["selector"] == "genetic"
        # Bounded search: the fuzz loop's safety contract for this kind.
        assert 0 < int(params["max_generations"]) <= 10
        assert 0 < int(params["patience"]) <= int(params["max_generations"])
        assert 0.0 < float(params["load"]) <= 1.0
        return
    SimConfig(
        stack=params.get("stack", "r2c2"),
        mtu_payload=int(params.get("mtu_payload", 1500)),
        control_plane=params.get("control_plane", "shared"),
        reliable=bool(params.get("reliable", False)),
        loss_rate=float(params.get("loss_rate", 0.0)),
        queue_limit_bytes=params.get("queue_limit_bytes"),
        horizon_ns=params.get("horizon_ns"),
        audit=bool(params.get("audit", False)),
        audit_strict=bool(params.get("audit_strict", False)),
        seed=int(params.get("sim_seed", 0)),
    )
    topology = _build_topology(task)
    topology, _failed = _apply_failure_storm(task, topology)
    trace = _make_trace(task, topology)
    assert len(trace) >= 1
    # Always audited, always bounded: the fuzz loop's safety contract.
    assert params["audit"] is True
    assert 0 < int(params["horizon_ns"]) <= SAFETY_HORIZON_NS


class TestGenerate:
    def test_same_seed_same_bytes(self):
        a = generate_scenario(1234, "x")
        b = generate_scenario(1234, "x")
        assert a == b
        assert a.to_json() == b.to_json()
        assert a.fingerprint() == b.fingerprint()

    def test_different_seeds_differ(self):
        specs = {generate_scenario(s, "x").fingerprint() for s in range(30)}
        assert len(specs) > 25  # the space is big; collisions are rare

    def test_name_only_changes_label_not_behavior_params(self):
        a = generate_scenario(99, "a")
        b = generate_scenario(99, "b")
        assert a.params == b.params
        assert a.fingerprint() != b.fingerprint()  # name is in the identity

    @given(seed=seeds)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_generated_scenarios_are_valid(self, seed):
        scenario = generate_scenario(seed, "gen")
        _check_runnable(scenario)

    @given(seed=seeds)
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_genome_round_trip(self, seed):
        scenario = generate_scenario(seed, "gen")
        assert assemble(genome_of(scenario), "gen") == scenario


class TestMutate:
    @given(parent_seed=seeds, mut_seed=seeds)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_mutants_are_valid(self, parent_seed, mut_seed):
        parent = generate_scenario(parent_seed, "parent")
        mutant = mutate_scenario(parent, mut_seed, "mutant")
        _check_runnable(mutant)

    def test_mutation_deterministic(self):
        parent = generate_scenario(5, "p")
        a = mutate_scenario(parent, 17, "m")
        b = mutate_scenario(parent, 17, "m")
        assert a == b and a.to_json() == b.to_json()

    def test_mutation_changes_something(self):
        parent = generate_scenario(5, "p")
        changed = sum(
            mutate_scenario(parent, s, "p").content_dict()
            != parent.content_dict()
            for s in range(20)
        )
        assert changed >= 18  # seed re-draws alone almost always differ


class TestEligibility:
    def test_sharding_eligibility_matches_validate(self):
        from repro.distsim import validate_sharded_config

        for seed in range(40):
            scenario = generate_scenario(seed, "e")
            params = scenario.params_dict
            config = SimConfig(
                stack=params.get("stack", "r2c2"),
                control_plane=params.get("control_plane", "shared"),
                reliable=bool(params.get("reliable", False)),
                loss_rate=float(params.get("loss_rate", 0.0)),
                audit=True,
                audit_strict=False,
                seed=1,
            )
            if sharding_eligible(scenario):
                validate_sharded_config(config)  # must not raise


def test_spec_json_round_trip():
    scenario = generate_scenario(7, "rt")
    again = Scenario.from_json(scenario.to_json())
    assert again == scenario
    assert json.loads(scenario.to_json()) == json.loads(again.to_json())
