"""Shrinker behavior against synthetic predicates (no simulation needed).

The shrinker only talks to the world through its predicate, so these
tests drive it with pure functions of the spec and check minimality,
determinism and budget respect.
"""

import pytest

from repro.fuzz import generate_scenario, shrink_scenario
from repro.fuzz.generator import assemble, genome_of

pytestmark = pytest.mark.fuzz


def _nodes(scenario):
    n = 1
    for d in scenario.dims:
        n *= d
    return n


def _big_failing_scenario():
    """A deliberately maximal scenario for the shrinker to chew through."""
    genome = genome_of(generate_scenario(3, "big"))
    genome.update(
        kind="sim",  # pin the kind: sim axes below must survive assembly
        topology="torus",
        dims=(4, 4),
        workload="poisson",
        n_flows=12,
        sizes="fixed",
        flow_bytes=64_000,
        fail_links=2,
        loss_rate=0.01,
        queue_limit_bytes=30_000,
        latency_ns=1000,
        mtu_payload=512,
        horizon_ns=2_000_000,
        stack="r2c2",
        control_plane="per_node",
    )
    return assemble(genome, "big")


class TestShrink:
    def test_always_failing_predicate_reaches_floor(self):
        scenario = _big_failing_scenario()
        result = shrink_scenario(scenario, lambda s: True, max_evals=200)
        shrunk = result.scenario
        assert _nodes(shrunk) == 4  # smallest grid on the ladder
        assert shrunk.param("n_flows") == 1
        assert shrunk.param("fail_links") is None
        assert shrunk.param("loss_rate") is None
        assert shrunk.param("queue_limit_bytes") is None
        assert shrunk.param("latency_ns") is None
        assert shrunk.param("mtu_payload") == 1500
        assert shrunk.param("control_plane") == "shared"
        assert result.steps  # the trail is recorded

    def test_predicate_gates_acceptance(self):
        scenario = _big_failing_scenario()
        # "Failure" requires >= 8 nodes and >= 3 flows: the shrinker must
        # stop exactly at the smallest spec satisfying that.
        def fails(s):
            return _nodes(s) >= 8 and s.param("n_flows", 0) >= 3

        result = shrink_scenario(scenario, fails, max_evals=300)
        assert _nodes(result.scenario) == 8
        assert result.scenario.param("n_flows") == 3

    def test_deterministic(self):
        scenario = _big_failing_scenario()
        a = shrink_scenario(scenario, lambda s: True, max_evals=200)
        b = shrink_scenario(scenario, lambda s: True, max_evals=200)
        assert a.scenario == b.scenario
        assert a.steps == b.steps
        assert a.evals == b.evals

    def test_eval_budget_respected(self):
        scenario = _big_failing_scenario()
        calls = []

        def fails(s):
            calls.append(s)
            return True

        result = shrink_scenario(scenario, fails, max_evals=5)
        assert result.evals == len(calls) == 5

    def test_never_failing_keeps_original(self):
        scenario = _big_failing_scenario()
        result = shrink_scenario(scenario, lambda s: False, max_evals=100)
        assert result.scenario == scenario
        assert result.steps == []

    def test_candidates_stay_valid(self):
        from repro.sim import SimConfig

        scenario = _big_failing_scenario()
        seen = []

        def fails(s):
            params = s.params_dict
            SimConfig(
                stack=params.get("stack", "r2c2"),
                mtu_payload=int(params.get("mtu_payload", 1500)),
                control_plane=params.get("control_plane", "shared"),
                reliable=bool(params.get("reliable", False)),
                loss_rate=float(params.get("loss_rate", 0.0)),
                audit=True,
                audit_strict=False,
            )
            seen.append(s)
            return True

        shrink_scenario(scenario, fails, max_evals=200)
        assert len(seen) > 10  # the predicate really ran the gauntlet
