"""End-to-end exercise: plant a receiver bug, fuzz, shrink, file, replay.

``REPRO_PLANT_BUG=early-completion`` makes the R2C2 receiver declare
completion one MTU early and discard later segments, so audited flows end
under-accounted — exactly the class of bug the invariant auditor exists
to catch.  The fuzzer must find it within a bounded budget, shrink it to
a tiny reproducer, persist it to the corpus, and the corpus replay must
flag it while the bug is planted and pass once it is gone.
"""

import pytest

from repro.fuzz import Corpus, FuzzConfig, replay_entry, run_fuzz

pytestmark = pytest.mark.fuzz

_BUDGET = 60


@pytest.fixture()
def planted_bug(monkeypatch):
    monkeypatch.setenv("REPRO_PLANT_BUG", "early-completion")


class TestPlantedBug:
    def test_found_shrunk_filed_and_replayable(self, tmp_path, planted_bug, monkeypatch):
        corpus_dir = tmp_path / "corpus"
        config = FuzzConfig(
            seed=42, budget=_BUDGET, batch_size=10, corpus_dir=corpus_dir
        )
        report = run_fuzz(config)

        # Found within the budget...
        assert report.found_failures, "fuzzer missed the planted bug"
        audit_hits = [
            e
            for e in report.failures
            if any(v.oracle == "audit" and not v.ok for v in e.verdicts)
        ]
        assert audit_hits, "planted bug should surface as an audit violation"
        entry = audit_hits[0]

        # ...shrunk hard: a handful of nodes and flows, not a rack.
        n_nodes = 1
        for d in entry.scenario.dims:
            n_nodes *= d
        assert n_nodes <= 8, f"reproducer kept {n_nodes} nodes"
        assert entry.scenario.param("n_flows", 1) <= 4
        assert entry.shrink_steps, "shrinking accepted no moves?"
        violations = [
            d
            for v in entry.verdicts
            if v.oracle == "audit" and not v.ok
            for d in v.details
        ]
        assert any("completed with only" in d for d in violations)

        # ...persisted content-addressed...
        corpus = Corpus(corpus_dir)
        assert len(corpus) == len(report.failures)
        stored = corpus.find(entry.entry_id)
        assert stored is not None and stored.scenario == entry.scenario

        # ...replays as failing while the bug is in...
        verdicts = replay_entry(stored)
        assert any(v.oracle == "audit" and not v.ok for v in verdicts)

        # ...and as passing once the bug is fixed (env cleared).
        monkeypatch.delenv("REPRO_PLANT_BUG")
        verdicts = replay_entry(stored)
        assert all(v.ok for v in verdicts), [
            (v.oracle, v.details) for v in verdicts if not v.ok
        ]

    def test_find_is_deterministic(self, tmp_path, planted_bug):
        r1 = run_fuzz(
            FuzzConfig(seed=42, budget=20, batch_size=10,
                       corpus_dir=tmp_path / "c1")
        )
        r2 = run_fuzz(
            FuzzConfig(seed=42, budget=20, batch_size=10,
                       corpus_dir=tmp_path / "c2")
        )
        assert [e.entry_id for e in r1.failures] == [e.entry_id for e in r2.failures]
        files1 = {p.name: p.read_bytes() for p in Corpus(tmp_path / "c1").paths()}
        files2 = {p.name: p.read_bytes() for p in Corpus(tmp_path / "c2").paths()}
        assert files1 == files2
