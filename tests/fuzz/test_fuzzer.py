"""The fuzzing loop: determinism, coverage growth, clean-tree behavior."""

import json

import pytest

from repro.fuzz import Corpus, FuzzConfig, run_fuzz

pytestmark = pytest.mark.fuzz


def _run(tmp_path, tag, **overrides):
    corpus_dir = tmp_path / tag
    config = FuzzConfig(
        seed=42, budget=30, batch_size=10, corpus_dir=corpus_dir, **overrides
    )
    return run_fuzz(config), corpus_dir


class TestFuzzLoop:
    def test_budget_and_coverage(self, tmp_path):
        report, _ = _run(tmp_path, "a")
        assert report.executed == 30
        assert len(report.coverage) == report.interesting > 5
        # A healthy tree yields no failures: every scenario passes every
        # oracle (crash, audit, sanity, sharded-vs-serial differential).
        assert report.failures == []
        assert not report.found_failures

    def test_two_runs_byte_identical(self, tmp_path):
        r1, d1 = _run(tmp_path, "one")
        r2, d2 = _run(tmp_path, "two")
        assert r1.coverage.to_json() == r2.coverage.to_json()
        assert json.dumps(r1.summary(), sort_keys=True) == json.dumps(
            r2.summary(), sort_keys=True
        )
        files1 = {p.name: p.read_bytes() for p in Corpus(d1).paths()}
        files2 = {p.name: p.read_bytes() for p in Corpus(d2).paths()}
        assert files1 == files2

    def test_different_seed_different_coverage(self, tmp_path):
        r1, _ = _run(tmp_path, "s42")
        config = FuzzConfig(seed=43, budget=30, batch_size=10)
        r2 = run_fuzz(config)
        assert r1.coverage.to_json() != r2.coverage.to_json()

    def test_summary_is_jsonable_and_complete(self, tmp_path):
        report, _ = _run(tmp_path, "sum")
        summary = json.loads(json.dumps(report.summary()))
        assert summary["executed"] == 30
        assert summary["seed"] == 42 and summary["budget"] == 30
        assert summary["coverage_signatures"] == len(report.coverage)
        assert summary["failures"] == [] and summary["corpus_paths"] == []
