"""Tests for the end-to-end reliability transport (paper §6)."""

import pytest

from repro.errors import ReproError
from repro.transport import SACK_WINDOW, AckInfo, ReliableReceiver, ReliableSender


class TestReliableSender:
    def test_sends_in_order_initially(self):
        sender = ReliableSender(n_segments=3, rto_ns=100)
        for expected in (0, 1, 2):
            seq = sender.next_segment(now_ns=0)
            assert seq == expected
            sender.on_sent(seq, now_ns=0)
        assert sender.next_segment(now_ns=0) is None
        assert sender.in_flight == 3

    def test_retransmits_after_rto(self):
        sender = ReliableSender(n_segments=1, rto_ns=100)
        sender.on_sent(0, now_ns=0)
        assert sender.next_segment(now_ns=50) is None
        assert sender.next_segment(now_ns=100) == 0
        assert sender.retransmissions == 1

    def test_oldest_expired_first(self):
        sender = ReliableSender(n_segments=3, rto_ns=100)
        sender.on_sent(0, now_ns=0)
        sender.on_sent(1, now_ns=10)
        sender.on_sent(2, now_ns=20)
        assert sender.next_segment(now_ns=150) == 0

    def test_cumulative_ack(self):
        sender = ReliableSender(n_segments=4, rto_ns=100)
        for seq in range(3):
            sender.on_sent(seq, now_ns=0)
        newly = sender.on_ack(AckInfo(cumulative=2))
        assert newly == 2
        assert sender.in_flight == 1
        assert not sender.all_acked

    def test_sack_acknowledges_holes(self):
        sender = ReliableSender(n_segments=4, rto_ns=100)
        for seq in range(4):
            sender.on_sent(seq, now_ns=0)
        # Segment 0 lost; 1 and 3 arrived.
        ack = AckInfo(cumulative=0, sack_bitmap=0b101)  # offsets 0 and 2
        sender.on_ack(ack)
        assert sender.in_flight == 2  # 0 and 2 outstanding
        # After RTO only the lost ones come back.
        assert sender.next_segment(now_ns=200) == 0

    def test_sacked_segment_not_retransmitted(self):
        sender = ReliableSender(n_segments=2, rto_ns=100)
        sender.on_sent(0, now_ns=0)
        sender.on_sent(1, now_ns=0)
        sender.on_ack(AckInfo(cumulative=0, sack_bitmap=0b1))  # seg 1 sacked
        assert sender.next_segment(now_ns=500) == 0

    def test_all_acked(self):
        sender = ReliableSender(n_segments=2, rto_ns=100)
        sender.on_sent(0, 0)
        sender.on_sent(1, 0)
        sender.on_ack(AckInfo(cumulative=2))
        assert sender.all_acked
        assert sender.next_segment(0) is None

    def test_duplicate_ack_is_idempotent(self):
        sender = ReliableSender(n_segments=2, rto_ns=100)
        sender.on_sent(0, 0)
        assert sender.on_ack(AckInfo(cumulative=1)) == 1
        assert sender.on_ack(AckInfo(cumulative=1)) == 0

    def test_next_timeout(self):
        sender = ReliableSender(n_segments=2, rto_ns=100)
        assert sender.next_timeout_ns(0) is None
        sender.on_sent(0, now_ns=40)
        assert sender.next_timeout_ns(50) == 140

    def test_validation(self):
        with pytest.raises(ReproError):
            ReliableSender(0, 100)
        with pytest.raises(ReproError):
            ReliableSender(1, 0)
        sender = ReliableSender(2, 100)
        with pytest.raises(ReproError):
            sender.on_sent(5, 0)


class TestReliableReceiver:
    def test_in_order_delivery(self):
        receiver = ReliableReceiver(3)
        assert receiver.on_segment(0)
        assert receiver.on_segment(1)
        assert receiver.on_segment(2)
        assert receiver.complete
        assert receiver.cumulative == 3

    def test_out_of_order_and_sack(self):
        receiver = ReliableReceiver(4)
        receiver.on_segment(2)
        receiver.on_segment(1)
        ack = receiver.ack_info()
        assert ack.cumulative == 0
        assert ack.is_received(1) and ack.is_received(2)
        assert not ack.is_received(0) and not ack.is_received(3)
        receiver.on_segment(0)
        assert receiver.ack_info().cumulative == 3

    def test_duplicates_counted_not_redelivered(self):
        receiver = ReliableReceiver(2)
        assert receiver.on_segment(0)
        assert not receiver.on_segment(0)
        assert receiver.duplicates == 1

    def test_validation(self):
        receiver = ReliableReceiver(2)
        with pytest.raises(ReproError):
            receiver.on_segment(2)
        with pytest.raises(ReproError):
            ReliableReceiver(0)


class TestEndToEndRecovery:
    def test_lossy_channel_converges(self):
        """Monte-carlo: a 30%-lossy channel still delivers everything."""
        import random

        rng = random.Random(5)
        sender = ReliableSender(n_segments=20, rto_ns=10)
        receiver = ReliableReceiver(20)
        now = 0
        while not sender.all_acked and now < 10_000:
            seq = sender.next_segment(now)
            if seq is not None:
                sender.on_sent(seq, now)
                if rng.random() > 0.3:  # segment survives
                    receiver.on_segment(seq)
                    if rng.random() > 0.3:  # ack survives
                        sender.on_ack(receiver.ack_info())
            now += 1
        assert receiver.complete
        assert sender.all_acked
        assert sender.retransmissions > 0
