"""Property tests for the control-plane message codecs.

The daemon trusts :mod:`repro.wire.control` for two things: any message a
client encodes decodes back to the identical value (after the documented
weight/demand quantization), and anything damaged in flight — truncated,
bit-flipped, mis-framed — is rejected with :class:`WireFormatError`
rather than silently mis-parsed.  Hypothesis drives both directions.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.wire import (
    AllocQuery,
    AllocReply,
    ControlAck,
    ControlError,
    FlowAnnounce,
    FlowFinish,
    MAX_FRAME_SIZE,
    SnapshotEvent,
    SnapshotSubscribe,
    control_type,
    decode_control,
    encode_frame,
    split_frames,
)
from repro.wire.packets import _DEMAND_INF_MBPS, _WEIGHT_SCALE

flow_ids = st.integers(min_value=0, max_value=2**32 - 1)
node_ids = st.integers(min_value=0, max_value=2**16 - 1)
# Weights that survive the u8 x1/16 quantization exactly.
weights = st.integers(min_value=1, max_value=0xFF).map(lambda q: q / _WEIGHT_SCALE)
# Demands that survive the 24-bit Mbps quantization exactly (or inf).
demands = st.one_of(
    st.just(math.inf),
    st.integers(min_value=1, max_value=_DEMAND_INF_MBPS - 1).map(lambda m: m * 1e6),
)
priorities = st.integers(min_value=0, max_value=0xFF)
protocol_ids = st.integers(min_value=0, max_value=0xFF)
rates = st.floats(allow_nan=False, min_value=0.0, max_value=1e15)

announces = st.builds(
    FlowAnnounce,
    flow_id=flow_ids,
    src=node_ids,
    dst=node_ids,
    protocol_id=protocol_ids,
    weight=weights,
    priority=priorities,
    demand_bps=demands,
)
finishes = st.builds(FlowFinish, flow_id=flow_ids)
queries = st.builds(AllocQuery, flow_id=flow_ids)
replies = st.builds(
    AllocReply,
    flow_id=flow_ids,
    known=st.booleans(),
    rate_bps=rates,
    bottleneck_link=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1)),
)
subscribes = st.builds(SnapshotSubscribe, max_events=st.integers(0, 2**32 - 1))
json_payloads = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(-1000, 1000), st.floats(-1e6, 1e6), st.text(max_size=8)),
    max_size=6,
)
events = st.builds(
    SnapshotEvent, seq=st.integers(0, 2**32 - 1), payload=json_payloads
)
acks = st.builds(ControlAck, flow_id=flow_ids, code=st.integers(0, 0xFF))
errors = st.builds(
    ControlError, code=st.integers(0, 0xFF), message=st.text(max_size=64)
)

messages = st.one_of(
    announces, finishes, queries, replies, subscribes, events, acks, errors
)


class TestRoundTrip:
    @given(message=messages)
    @settings(max_examples=300, deadline=None)
    def test_encode_decode_identity(self, message):
        body = message.encode()
        assert decode_control(body) == message
        # Dispatch agrees with the dedicated decoder.
        assert type(message).decode(body) == message

    @given(message=messages)
    @settings(max_examples=100, deadline=None)
    def test_framing_round_trip(self, message):
        frame = encode_frame(message.encode())
        bodies, rest = split_frames(frame)
        assert rest == b""
        assert [decode_control(b) for b in bodies] == [message]

    @given(batch=st.lists(messages, min_size=1, max_size=6), split=st.data())
    @settings(max_examples=60, deadline=None)
    def test_split_frames_reassembles_any_chunking(self, batch, split):
        stream = b"".join(encode_frame(m.encode()) for m in batch)
        cut = split.draw(st.integers(min_value=0, max_value=len(stream)))
        bodies, rest = split_frames(stream[:cut])
        bodies2, rest2 = split_frames(rest + stream[cut:])
        assert rest2 == b""
        assert [decode_control(b) for b in bodies + bodies2] == batch

    def test_reply_rate_is_full_float64(self):
        rate = 1.0e10 / 3.0  # not representable in any quantized encoding
        reply = AllocReply(flow_id=1, known=True, rate_bps=rate, bottleneck_link=7)
        assert decode_control(reply.encode()).rate_bps == rate

    def test_snapshot_payload_is_canonical_json(self):
        event = SnapshotEvent(seq=3, payload={"b": 1, "a": 2})
        body = event.encode()
        blob = body[10:-2]
        assert blob == json.dumps({"a": 2, "b": 1}, separators=(",", ":")).encode()


class TestRejection:
    @given(message=messages, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_truncated_bodies_rejected(self, message, data):
        body = message.encode()
        cut = data.draw(st.integers(min_value=1, max_value=len(body) - 1))
        with pytest.raises(WireFormatError):
            decode_control(body[:cut])

    @given(message=messages, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_bit_flips_rejected(self, message, data):
        body = bytearray(message.encode())
        index = data.draw(st.integers(min_value=0, max_value=len(body) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        body[index] ^= 1 << bit
        try:
            decoded = decode_control(bytes(body))
        except WireFormatError:
            return  # rejected: the common, desired outcome
        # The Internet checksum admits rare aliases (e.g. a flip inside
        # the checksum field compensated by its ones'-complement rules);
        # any accepted mutant must still not impersonate the original.
        assert decoded != message

    def test_empty_body_rejected(self):
        with pytest.raises(WireFormatError):
            decode_control(b"")

    def test_unknown_type_rejected(self):
        with pytest.raises(WireFormatError):
            decode_control(bytes([0xF0, 0, 0, 0]))

    def test_oversized_frame_rejected(self):
        with pytest.raises(WireFormatError):
            encode_frame(b"\x00" * (MAX_FRAME_SIZE + 1))

    def test_corrupt_length_prefix_rejected(self):
        prefix = (MAX_FRAME_SIZE + 1).to_bytes(4, "big")
        with pytest.raises(WireFormatError):
            split_frames(prefix + b"\x00" * 8)

    def test_announce_weight_out_of_range(self):
        with pytest.raises(WireFormatError):
            FlowAnnounce(flow_id=1, src=0, dst=1, weight=0.001).encode()

    def test_announce_demand_out_of_range(self):
        with pytest.raises(WireFormatError):
            FlowAnnounce(flow_id=1, src=0, dst=1, demand_bps=1e30).encode()

    def test_sub_mbps_demand_rounds_up_to_wire_floor(self):
        # A zero-Mbps encoding would decode into a spec no allocator
        # accepts; tiny demands ride the 1 Mbps floor instead.
        message = FlowAnnounce(flow_id=1, src=0, dst=1, demand_bps=5.0)
        assert decode_control(message.encode()).demand_bps == 1e6

    @given(message=messages)
    @settings(max_examples=50, deadline=None)
    def test_type_nibble_readable_without_verification(self, message):
        body = message.encode()
        assert control_type(body) == body[0] >> 4
