"""Tests for checksums, route encoding and packet formats."""

import math

import pytest

from repro.errors import WireFormatError
from repro.wire import (
    BROADCAST_PACKET_SIZE,
    DATA_HEADER_SIZE,
    EVENT_DEMAND_UPDATE,
    EVENT_FLOW_FINISH,
    EVENT_FLOW_START,
    MAX_HOPS,
    BroadcastPacket,
    DataPacket,
    DropNotificationPacket,
    RouteUpdatePacket,
    internet_checksum,
    pack_route,
    packet_type,
    port_at,
    unpack_route,
    xor8,
)
from repro.wire.packets import TYPE_BROADCAST, TYPE_DATA, TYPE_ROUTE_UPDATE


class TestChecksums:
    def test_internet_checksum_detects_flip(self):
        data = b"hello world, this is a packet"
        base = internet_checksum(data)
        flipped = bytes([data[0] ^ 0xFF]) + data[1:]
        assert internet_checksum(flipped) != base

    def test_internet_checksum_odd_length(self):
        assert internet_checksum(b"abc") == internet_checksum(b"abc\x00")

    def test_internet_checksum_is_16_bit(self):
        assert 0 <= internet_checksum(b"\xff" * 100) <= 0xFFFF

    def test_xor8_detects_flip_and_truncation(self):
        data = b"0123456789"
        assert xor8(data[:-1]) != xor8(data)
        flipped = bytes([data[0] ^ 1]) + data[1:]
        assert xor8(flipped) != xor8(data)


class TestRouteEncoding:
    def test_roundtrip(self):
        ports = [0, 1, 2, 3, 4, 5, 6, 7, 0, 3]
        assert unpack_route(pack_route(ports), len(ports)) == ports

    def test_max_hops_is_42(self):
        # §4.2: "routes with up to 42 hops".
        assert MAX_HOPS == 42
        pack_route([7] * 42)
        with pytest.raises(WireFormatError):
            pack_route([0] * 43)

    def test_port_range(self):
        with pytest.raises(WireFormatError):
            pack_route([8])

    def test_port_at(self):
        field = pack_route([3, 1, 4])
        assert port_at(field, 0) == 3
        assert port_at(field, 1) == 1
        assert port_at(field, 2) == 4

    def test_field_size_validation(self):
        with pytest.raises(WireFormatError):
            unpack_route(b"\x00" * 15, 1)


class TestDataPacket:
    def make(self, **overrides):
        defaults = dict(
            flow_id=77,
            src=12,
            dst=500,
            seq=3,
            route_ports=(1, 2, 3),
            route_index=0,
            payload=b"abcdef",
        )
        defaults.update(overrides)
        return DataPacket(**defaults)

    def test_roundtrip(self):
        packet = self.make()
        assert DataPacket.decode(packet.encode()) == packet

    def test_header_size(self):
        assert DATA_HEADER_SIZE == 35
        assert self.make(payload=b"").wire_size == 35

    def test_checksum_detects_payload_corruption(self):
        raw = bytearray(self.make().encode())
        raw[-1] ^= 0xFF
        with pytest.raises(WireFormatError):
            DataPacket.decode(bytes(raw))

    def test_route_index_mutation_preserves_checksum(self):
        # Forwarders bump ridx in place; the checksum excludes it.
        raw = bytearray(self.make().encode())
        raw[2] += 1
        decoded = DataPacket.decode(bytes(raw))
        assert decoded.route_index == 1

    def test_advance(self):
        packet = self.make()
        assert packet.next_port == 1
        advanced = packet.advance()
        assert advanced.route_index == 1
        assert advanced.next_port == 2

    def test_advance_past_end_raises(self):
        packet = self.make(route_index=3)
        with pytest.raises(WireFormatError):
            packet.advance()
        with pytest.raises(WireFormatError):
            packet.next_port

    def test_length_mismatch_detected(self):
        raw = self.make().encode() + b"extra"
        with pytest.raises(WireFormatError):
            DataPacket.decode(raw)

    def test_field_range_validation(self):
        with pytest.raises(WireFormatError):
            self.make(src=70000).encode()
        with pytest.raises(WireFormatError):
            self.make(flow_id=1 << 33).encode()
        with pytest.raises(WireFormatError):
            self.make(route_index=5).encode()

    def test_65536_node_address_space(self):
        # §4.2: "The size of endpoints allows for up to 65,536 nodes."
        self.make(src=65535, dst=65535).encode()


class TestBroadcastPacket:
    def make(self, **overrides):
        defaults = dict(
            event=EVENT_FLOW_START,
            src=3,
            dst=400,
            flow_id=123456,
            weight=1.0,
            priority=2,
            demand_bps=math.inf,
            tree_id=3,
            protocol_id=2,
        )
        defaults.update(overrides)
        return BroadcastPacket(**defaults)

    def test_fixed_16_bytes(self):
        # §3.2 / Figure 6: broadcast packets are exactly 16 bytes.
        assert BROADCAST_PACKET_SIZE == 16
        assert len(self.make().encode()) == 16

    def test_roundtrip(self):
        packet = self.make()
        assert BroadcastPacket.decode(packet.encode()) == packet

    def test_demand_4tbps(self):
        # Figure 6: demand field covers "up to 4 Tbps".
        packet = self.make(event=EVENT_DEMAND_UPDATE, demand_bps=4e12)
        assert BroadcastPacket.decode(packet.encode()).demand_bps == 4e12

    def test_infinite_demand_roundtrip(self):
        decoded = BroadcastPacket.decode(self.make(demand_bps=math.inf).encode())
        assert math.isinf(decoded.demand_bps)

    def test_weight_quantization(self):
        decoded = BroadcastPacket.decode(self.make(weight=2.5).encode())
        assert decoded.weight == pytest.approx(2.5)
        # Sixteenths resolution.
        decoded = BroadcastPacket.decode(self.make(weight=1.03).encode())
        assert abs(decoded.weight - 1.03) <= 1 / 32

    def test_checksum(self):
        raw = bytearray(self.make().encode())
        raw[5] ^= 0x55
        with pytest.raises(WireFormatError):
            BroadcastPacket.decode(bytes(raw))

    def test_all_events(self):
        for event in (EVENT_FLOW_START, EVENT_FLOW_FINISH, EVENT_DEMAND_UPDATE):
            assert BroadcastPacket.decode(self.make(event=event).encode()).event == event

    def test_field_limits(self):
        with pytest.raises(WireFormatError):
            self.make(tree_id=16).encode()
        with pytest.raises(WireFormatError):
            self.make(protocol_id=16).encode()
        with pytest.raises(WireFormatError):
            self.make(weight=100.0).encode()
        with pytest.raises(WireFormatError):
            self.make(event=9).encode()


class TestRouteUpdatePacket:
    def test_roundtrip(self):
        packet = RouteUpdatePacket(assignments=((1, 0), (2, 2), (3, 1)))
        assert RouteUpdatePacket.decode(packet.encode()) == packet

    def test_about_300_entries_per_1500_bytes(self):
        # §3.4: "up to 300 {flow, routing protocol} pairs ... in a single
        # 1,500-byte packet".
        assert 295 <= RouteUpdatePacket.MAX_ENTRIES <= 300
        big = RouteUpdatePacket(
            assignments=tuple((i, i % 3) for i in range(RouteUpdatePacket.MAX_ENTRIES))
        )
        assert len(big.encode()) <= 1500

    def test_overflow_rejected(self):
        with pytest.raises(WireFormatError):
            RouteUpdatePacket(
                assignments=tuple((i, 0) for i in range(RouteUpdatePacket.MAX_ENTRIES + 1))
            ).encode()

    def test_checksum(self):
        raw = bytearray(RouteUpdatePacket(assignments=((9, 1),)).encode())
        raw[-1] ^= 0x01
        with pytest.raises(WireFormatError):
            RouteUpdatePacket.decode(bytes(raw))


class TestDropNotification:
    def test_roundtrip(self):
        packet = DropNotificationPacket(dropped_at=9, source=2, seq=1234)
        assert DropNotificationPacket.decode(packet.encode()) == packet

    def test_checksum(self):
        raw = bytearray(DropNotificationPacket(1, 2, 3).encode())
        raw[3] ^= 0xFF
        with pytest.raises(WireFormatError):
            DropNotificationPacket.decode(bytes(raw))


class TestDispatch:
    def test_packet_type(self):
        data = DataPacket(1, 0, 1, 0, (0,), 0, b"").encode()
        bcast = BroadcastPacket(EVENT_FLOW_START, 0, 1, 2).encode()
        update = RouteUpdatePacket(((1, 1),)).encode()
        assert packet_type(data) == TYPE_DATA
        assert packet_type(bcast) == TYPE_BROADCAST
        assert packet_type(update) == TYPE_ROUTE_UPDATE

    def test_empty_buffer(self):
        with pytest.raises(WireFormatError):
            packet_type(b"")
