"""Tests for the bounded-LRU mapping behind the allocation caches."""

import pytest

from repro.lru import BoundedLru


class TestBoundedLru:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedLru(0)

    def test_get_hit_and_miss(self):
        lru = BoundedLru(4)
        lru["a"] = 1
        assert lru.get("a") == 1
        assert lru.get("b") is None
        assert lru.get("b", "fallback") == "fallback"
        assert lru.hits == 1
        assert lru.misses == 2

    def test_getitem_raises_on_miss(self):
        lru = BoundedLru(2)
        with pytest.raises(KeyError):
            lru["missing"]

    def test_eviction_drops_least_recently_used(self):
        lru = BoundedLru(2)
        lru["a"] = 1
        lru["b"] = 2
        lru["c"] = 3  # evicts "a", the oldest untouched entry
        assert "a" not in lru
        assert set(lru.keys()) == {"b", "c"}
        assert len(lru) == 2

    def test_hit_refreshes_against_eviction(self):
        lru = BoundedLru(2)
        lru["a"] = 1
        lru["b"] = 2
        assert lru.get("a") == 1  # "a" becomes most recently used
        lru["c"] = 3  # must evict "b", not the refreshed "a"
        assert "a" in lru
        assert "b" not in lru

    def test_overwrite_refreshes_without_growth(self):
        lru = BoundedLru(2)
        lru["a"] = 1
        lru["b"] = 2
        lru["a"] = 10  # refresh by reassignment
        lru["c"] = 3
        assert lru["a"] == 10
        assert "b" not in lru
        assert len(lru) == 2

    def test_pop_and_clear(self):
        lru = BoundedLru(2)
        lru["a"] = 1
        assert lru.pop("a") == 1
        assert lru.pop("a", "gone") == "gone"
        lru["b"] = 2
        lru.clear()
        assert len(lru) == 0

    def test_values_iteration_does_not_reorder(self):
        lru = BoundedLru(3)
        lru["a"] = 1
        lru["b"] = 2
        # Iterating values() must not count as use (no move-to-end), so it
        # is safe inside loops that also index the cache.
        list(lru.values())
        lru["c"] = 3
        lru["d"] = 4  # evicts "a": values() did not refresh it
        assert "a" not in lru
