"""Tests for broadcast reliability bookkeeping."""

import pytest

from repro.broadcast import (
    BroadcastForwarderReliability,
    BroadcastSenderReliability,
    FailureRecovery,
)
from repro.errors import BroadcastError


class TestSenderReliability:
    def test_register_assigns_sequential_seqs(self):
        sender = BroadcastSenderReliability()
        assert sender.register(b"a", 0) == 0
        assert sender.register(b"b", 1) == 1
        assert sender.pending_count() == 2

    def test_drop_notification_returns_payload(self):
        sender = BroadcastSenderReliability()
        seq = sender.register(b"payload", 2)
        entry = sender.on_drop_notification(seq)
        assert entry is not None
        assert entry.payload == b"payload"
        assert entry.tree_id == 2
        assert entry.retransmits == 1

    def test_retransmit_budget(self):
        sender = BroadcastSenderReliability(max_retransmits=2)
        seq = sender.register(b"x", 0)
        assert sender.on_drop_notification(seq) is not None
        assert sender.on_drop_notification(seq) is not None
        assert sender.on_drop_notification(seq) is None  # budget exhausted
        assert sender.pending_count() == 0

    def test_replay_window_eviction(self):
        sender = BroadcastSenderReliability(replay_window=3)
        seqs = [sender.register(bytes([i]), 0) for i in range(5)]
        assert sender.pending_count() == 3
        assert sender.on_drop_notification(seqs[0]) is None  # evicted
        assert sender.on_drop_notification(seqs[4]) is not None

    def test_acknowledge_window(self):
        sender = BroadcastSenderReliability()
        for i in range(4):
            sender.register(bytes([i]), 0)
        sender.acknowledge_window(2)
        assert sender.pending_count() == 1

    def test_bad_window_rejected(self):
        with pytest.raises(BroadcastError):
            BroadcastSenderReliability(replay_window=0)


class TestForwarderReliability:
    def test_drop_notification_content(self):
        fwd = BroadcastForwarderReliability(node=7)
        note = fwd.on_queue_overflow(source=3, seq=42)
        assert note.dropped_at == 7
        assert note.source == 3
        assert note.seq == 42
        assert fwd.drops_reported == 1

    def test_corruption_counted(self):
        fwd = BroadcastForwarderReliability(node=1)
        fwd.on_corrupt_packet()
        fwd.on_corrupt_packet()
        assert fwd.corruptions_detected == 2


class TestFailureRecovery:
    def test_link_failure_reported_once(self):
        rec = FailureRecovery()
        assert rec.on_link_failure(0, 1)
        assert not rec.on_link_failure(0, 1)
        assert (0, 1) in rec.failed_links

    def test_node_failure_and_recovery(self):
        rec = FailureRecovery()
        assert rec.on_node_failure(5)
        assert not rec.on_node_failure(5)
        rec.on_recovery(node=5)
        assert 5 not in rec.failed_nodes

    def test_link_recovery(self):
        rec = FailureRecovery()
        rec.on_link_failure(0, 1)
        rec.on_recovery(src=0, dst=1)
        assert rec.failed_links == set()

    def test_reannounce_returns_all_local_flows(self):
        rec = FailureRecovery()
        flows = ["f1", "f2"]
        assert rec.flows_to_reannounce(flows) == flows
        assert rec.reannounce_count == 1

    def test_paper_failure_rate_estimate(self):
        # §3.2: 512 nodes x 4 CPUs x 0.3 faults/year -> "less than two
        # failures a day".
        rec = FailureRecovery()
        per_day = rec.expected_failures_per_day(512, cpus_per_node=4)
        assert 1.0 < per_day < 2.0
