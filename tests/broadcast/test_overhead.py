"""Tests for the analytic overhead models against the paper's numbers."""

import pytest

from repro.broadcast import (
    ControlTrafficModel,
    all_pairs_broadcast_bytes_per_link,
    broadcast_bytes_total,
    broadcast_capacity_fraction,
    flow_event_overhead,
    flow_wire_bytes,
)
from repro.errors import BroadcastError
from repro.topology import TorusTopology


class TestPaperClaims:
    def test_8kb_per_broadcast(self):
        # §3.2: "a single broadcast results in a total of 511*16 ≈ 8 KB".
        assert broadcast_bytes_total(512) == 511 * 16
        assert broadcast_bytes_total(512) == pytest.approx(8176)

    def test_26_percent_overhead_for_10kb_flows(self):
        # §3.2: a 10 KB flow (6-hop average) costs 26.66% to announce.
        overhead = flow_event_overhead(10 * 1024, 512, avg_hops=6.0)
        assert overhead == pytest.approx(0.2666, abs=0.0045)

    def test_10mb_flow_overhead_tiny(self):
        # §5.1: "For 10 MB flows ... the overhead would just be 0.026%".
        overhead = flow_event_overhead(10 * 1024 * 1024, 512, avg_hops=6.0)
        assert overhead == pytest.approx(0.00026, rel=0.05)

    def test_1_3_percent_capacity_at_5_percent_small_bytes(self):
        # §3.2 / Figure 9: 5% of bytes in small flows -> ~1.3% of capacity.
        fraction = broadcast_capacity_fraction(0.05, 512, avg_hops=6.0)
        assert fraction == pytest.approx(0.013, abs=0.002)

    def test_all_pairs_681kb_per_link(self):
        # §3.2: all-pairs flows -> 681 KB of broadcast traffic per link.
        topo = TorusTopology((8, 8, 8))
        per_link = all_pairs_broadcast_bytes_per_link(topo)
        assert per_link == pytest.approx(681_000, rel=0.04)

    def test_clos_broadcast_cost(self):
        # §6: two-level folded Clos, 512 hosts, 32-port switches: ~8.7 KB.
        from repro.topology import FoldedClosTopology

        topo = FoldedClosTopology(512, radix=32)
        assert broadcast_bytes_total(topo.n_nodes) == pytest.approx(8700, rel=0.03)


class TestModelShape:
    def test_linear_in_small_byte_fraction(self):
        points = [
            broadcast_capacity_fraction(f, 512, 6.0) for f in (0.1, 0.2, 0.4)
        ]
        # Approximately linear: doubling the small-byte share doubles the
        # broadcast share (to first order).
        assert points[1] == pytest.approx(2 * points[0], rel=0.1)
        assert points[2] == pytest.approx(2 * points[1], rel=0.1)

    def test_larger_diameter_lowers_overhead(self):
        # Figure 9: 3D mesh and 2D torus (longer average paths) sit below
        # the 3D torus curve.
        torus3d_hops = TorusTopology((8, 8, 8)).average_distance()
        torus2d_hops = TorusTopology((16, 32)).average_distance()
        assert torus2d_hops > torus3d_hops
        f3d = broadcast_capacity_fraction(0.2, 512, torus3d_hops)
        f2d = broadcast_capacity_fraction(0.2, 512, torus2d_hops)
        assert f2d < f3d

    def test_validation(self):
        with pytest.raises(BroadcastError):
            broadcast_capacity_fraction(1.5, 512, 6.0)
        with pytest.raises(BroadcastError):
            flow_wire_bytes(100, 0)
        with pytest.raises(BroadcastError):
            broadcast_bytes_total(0)


class TestControlTraffic:
    def test_decentralized_constant_in_flows(self):
        model = ControlTrafficModel(512, avg_hops=6.0)
        assert model.decentralized_bytes_per_event() == 511 * 16
        # Independent of concurrency by construction.
        assert model.ratio(10) > model.ratio(1)

    def test_centralized_grows_linearly(self):
        model = ControlTrafficModel(512, avg_hops=6.0)
        c1 = model.centralized_bytes_per_event(1)
        c10 = model.centralized_bytes_per_event(10)
        # One rate entry per extra flow per node.
        expected_growth = 9 * model.rate_entry_bytes * 511 * 6.0
        assert c10 - c1 == pytest.approx(expected_growth)

    def test_paper_6x_ratio_at_one_flow(self):
        # §5.2: "the centralized design generates 6.2x more traffic" at one
        # concurrent flow per server.  Our byte model lands near 6x.
        model = ControlTrafficModel(512, avg_hops=6.0)
        assert model.ratio(1) == pytest.approx(6.2, abs=0.4)

    def test_negative_flows_rejected(self):
        with pytest.raises(BroadcastError):
            ControlTrafficModel(512, 6.0).centralized_bytes_per_event(-1)
