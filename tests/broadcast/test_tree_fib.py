"""Tests for broadcast trees and the broadcast FIB."""

import pytest

from repro.broadcast import (
    BroadcastFib,
    BroadcastTree,
    TreeSelector,
    build_broadcast_tree,
    build_broadcast_trees,
)
from repro.errors import BroadcastError
from repro.topology import TorusTopology


class TestTreeConstruction:
    def test_spanning(self, torus3d):
        tree = build_broadcast_tree(torus3d, root=0)
        assert tree.covers_all()
        assert tree.n_edges() == torus3d.n_nodes - 1

    def test_is_shortest_path_tree(self, torus3d):
        for seed in range(3):
            tree = build_broadcast_tree(torus3d, root=5, seed=seed)
            assert tree.is_shortest_path_tree()

    def test_depth_equals_eccentricity(self, torus2d):
        tree = build_broadcast_tree(torus2d, root=0)
        assert tree.depth() == max(torus2d.distances_from(0))

    def test_different_tree_ids_differ(self, torus3d):
        trees = build_broadcast_trees(torus3d, root=0, n_trees=4)
        parents = {t.parent for t in trees}
        assert len(parents) > 1  # tie-shuffling produced distinct trees

    def test_children_inverse_of_parent(self, torus2d):
        tree = build_broadcast_tree(torus2d, root=0)
        for node, parent in enumerate(tree.parent):
            if parent is not None:
                assert node in tree.children(parent)

    def test_edge_links_valid(self, torus2d):
        tree = build_broadcast_tree(torus2d, root=3)
        assert len(tree.edge_links()) == torus2d.n_nodes - 1

    def test_zero_trees_rejected(self, torus2d):
        with pytest.raises(BroadcastError):
            build_broadcast_trees(torus2d, 0, n_trees=0)


class TestFib:
    def test_lookup_matches_tree(self, torus2d):
        fib = BroadcastFib(torus2d, n_trees=2)
        tree = fib.tree(3, 1)
        for node in torus2d.nodes():
            assert fib.next_hops(node, 3, 1) == tree.children(node)

    def test_unknown_tree_raises(self, torus2d):
        fib = BroadcastFib(torus2d, n_trees=2)
        with pytest.raises(BroadcastError):
            fib.next_hops(0, 0, 7)
        with pytest.raises(BroadcastError):
            fib.tree(0, 7)

    def test_delivery_order_reaches_everyone_once(self, torus2d):
        fib = BroadcastFib(torus2d, n_trees=2)
        order = fib.delivery_order(0, 0)
        receivers = [dst for _, dst in order]
        assert sorted(receivers) == [n for n in torus2d.nodes() if n != 0]

    def test_delivery_order_is_causal(self, torus2d):
        fib = BroadcastFib(torus2d, n_trees=1)
        seen = {0}
        for forwarder, receiver in fib.delivery_order(0, 0):
            assert forwarder in seen
            seen.add(receiver)

    def test_entry_count_bounded(self, torus2d):
        fib = BroadcastFib(torus2d, n_trees=2)
        for node in torus2d.nodes():
            assert fib.fib_entry_count(node) <= torus2d.n_nodes * 2

    def test_trees_for(self, torus2d):
        fib = BroadcastFib(torus2d, n_trees=3)
        trees = fib.trees_for(7)
        assert [t.tree_id for t in trees] == [0, 1, 2]
        assert all(t.root == 7 for t in trees)


class TestTreeSelector:
    def test_round_robin(self, torus2d):
        trees = build_broadcast_trees(torus2d, 0, n_trees=3)
        selector = TreeSelector(trees)
        picks = [selector.choose().tree_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_exclusion(self, torus2d):
        trees = build_broadcast_trees(torus2d, 0, n_trees=3)
        selector = TreeSelector(trees)
        selector.exclude(1)
        picks = {selector.choose().tree_id for _ in range(6)}
        assert picks == {0, 2}

    def test_restore(self, torus2d):
        trees = build_broadcast_trees(torus2d, 0, n_trees=2)
        selector = TreeSelector(trees)
        selector.exclude(0)
        selector.restore(0)
        picks = {selector.choose().tree_id for _ in range(4)}
        assert picks == {0, 1}

    def test_all_excluded_raises(self, torus2d):
        trees = build_broadcast_trees(torus2d, 0, n_trees=2)
        selector = TreeSelector(trees)
        selector.exclude(0)
        with pytest.raises(BroadcastError):
            selector.exclude(1)

    def test_empty_selector_rejected(self):
        with pytest.raises(BroadcastError):
            TreeSelector([])
