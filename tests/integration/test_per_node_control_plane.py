"""The per-node control plane (full visibility-skew fidelity) must agree
with the shared collapsed controller the simulator defaults to."""

import numpy as np
import pytest

from repro.sim import SimConfig, run_simulation
from repro.workloads import FixedSize, poisson_trace


@pytest.fixture(scope="module")
def mode_pair(torus3d_module):
    trace = poisson_trace(
        torus3d_module, 150, 4_000, sizes=FixedSize(80_000), seed=6
    )
    shared = run_simulation(
        torus3d_module, trace, SimConfig(stack="r2c2", control_plane="shared", seed=6)
    )
    per_node = run_simulation(
        torus3d_module,
        trace,
        SimConfig(stack="r2c2", control_plane="per_node", seed=6),
    )
    return shared, per_node


@pytest.fixture(scope="module")
def torus3d_module():
    from repro.topology import TorusTopology

    return TorusTopology((4, 4, 4))


class TestPerNodeControlPlane:
    def test_both_complete(self, mode_pair):
        shared, per_node = mode_pair
        assert shared.completion_rate() == 1.0
        assert per_node.completion_rate() == 1.0

    def test_fct_distributions_match(self, mode_pair):
        shared, per_node = mode_pair
        fs = np.sort([f.fct_ns() for f in shared.completed_flows()])
        fp = np.sort([f.fct_ns() for f in per_node.completed_flows()])
        rel = np.abs(fs - fp) / fs
        # Visibility skew is microseconds against 500 us epochs, so the
        # distributions are nearly identical.
        assert float(np.median(rel)) < 0.05
        assert float(np.percentile(rel, 95)) < 0.15

    def test_same_broadcast_traffic(self, mode_pair):
        shared, per_node = mode_pair
        assert shared.broadcast_bytes == per_node.broadcast_bytes

    def test_allocation_memo_effective(self, mode_pair):
        shared, per_node = mode_pair
        # One recompute per epoch per node, but thanks to the memo, wall
        # time stays within a small factor of the shared mode.
        assert per_node.wallclock_s < shared.wallclock_s * 5 + 2.0

    def test_reliable_stack_works_per_node(self, torus3d_module):
        trace = poisson_trace(
            torus3d_module, 40, 10_000, sizes=FixedSize(50_000), seed=9
        )
        metrics = run_simulation(
            torus3d_module,
            trace,
            SimConfig(
                stack="r2c2",
                control_plane="per_node",
                reliable=True,
                loss_rate=0.01,
                seed=9,
            ),
        )
        assert metrics.completion_rate() == 1.0

    def test_config_validation(self, torus3d_module):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            SimConfig(control_plane="quantum")
