"""End-to-end packet simulation across a multi-rack fabric (§6)."""

import pytest

from repro.interrack import ring_of_racks
from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.types import gbps
from repro.workloads import FixedSize, FlowArrival, poisson_trace


@pytest.fixture(scope="module")
def fabric():
    racks = [TorusTopology((3, 3), capacity_bps=gbps(10)) for _ in range(2)]
    return ring_of_racks(racks, cables_per_side=2, bridge_capacity_bps=gbps(10))


class TestMultiRackSimulation:
    def test_hierarchical_flows_complete(self, fabric):
        trace = [
            FlowArrival(i, i % 9, 9 + (i * 2) % 9, 60_000, i * 2_000, protocol="hier")
            for i in range(12)
        ]
        metrics = run_simulation(fabric, trace, SimConfig(stack="r2c2", seed=2))
        assert metrics.completion_rate() == 1.0
        for flow in metrics.flows:
            assert flow.bytes_received == flow.size_bytes

    def test_broadcasts_span_racks(self, fabric):
        # A flow start must inform nodes in BOTH racks: tables are rack-
        # global under one R2C2 domain.
        trace = [FlowArrival(0, 0, 12, 40_000, 0, protocol="hier")]
        metrics = run_simulation(
            fabric, trace, SimConfig(stack="r2c2", control_plane="per_node", seed=1)
        )
        assert metrics.completion_rate() == 1.0
        # 2 events x (n-1) deliveries each.
        assert metrics.broadcast_packets == 2 * (fabric.n_nodes - 1)

    def test_mixed_protocols_across_racks(self, fabric):
        # Intra-rack flows on plain spraying, inter-rack on hierarchical —
        # the per-flow protocol flexibility the paper's design enables.
        trace = [
            FlowArrival(0, 0, 4, 80_000, 0, protocol="rps"),
            FlowArrival(1, 1, 13, 80_000, 0, protocol="hier"),
            FlowArrival(2, 9, 17, 80_000, 0, protocol="rps"),
        ]
        metrics = run_simulation(fabric, trace, SimConfig(stack="r2c2", seed=3))
        assert metrics.completion_rate() == 1.0

    def test_bridge_constrains_inter_rack_throughput(self, fabric):
        # Many simultaneous inter-rack flows share 2 x 10G of cables.
        trace = [
            FlowArrival(i, i, 9 + i, 400_000, 0, protocol="hier") for i in range(6)
        ]
        metrics = run_simulation(fabric, trace, SimConfig(stack="r2c2", seed=4))
        assert metrics.completion_rate() == 1.0
        total_rate = sum(
            f.average_throughput_bps() for f in metrics.completed_flows()
        )
        # The aggregate cannot meaningfully exceed the gateway capacity
        # (some slack for the young-flow window before the first epoch).
        assert total_rate < 2 * gbps(10) * 1.8
