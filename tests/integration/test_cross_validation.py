"""Figure 7 in miniature: the Maze emulation and the packet simulator must
agree on flow throughput and queue occupancy distributions."""

import numpy as np
import pytest

from repro.analysis import ks_distance
from repro.maze import EmulationConfig, run_emulation
from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.types import gbps
from repro.workloads import FixedSize, poisson_trace


@pytest.fixture(scope="module")
def crossval_pair():
    """One matched emulation + simulation run (module-scoped: it is the
    expensive fixture of the suite)."""
    topo = TorusTopology((4, 4), capacity_bps=gbps(5))
    trace = poisson_trace(
        topo, n_flows=40, mean_interarrival_ns=150_000,
        sizes=FixedSize(1_000_000), seed=21,
    )
    maze = run_emulation(topo, trace, EmulationConfig(seed=21))
    sim = run_simulation(
        topo, trace, SimConfig(stack="r2c2", mtu_payload=8192, seed=21)
    )
    return maze, sim


class TestCrossValidation:
    def test_both_complete(self, crossval_pair):
        maze, sim = crossval_pair
        assert maze.completion_rate() == 1.0
        assert sim.completion_rate() == 1.0

    def test_throughput_distributions_agree(self, crossval_pair):
        maze, sim = crossval_pair
        tm = [f.average_throughput_bps() for f in maze.long_flows(500_000)]
        ts = [f.average_throughput_bps() for f in sim.long_flows(500_000)]
        assert ks_distance(tm, ts) < 0.25
        assert np.mean(tm) == pytest.approx(np.mean(ts), rel=0.15)

    def test_queue_occupancy_agrees(self, crossval_pair):
        maze, sim = crossval_pair
        qm = np.percentile(maze.max_queue_occupancy_bytes, 90)
        qs = np.percentile(sim.max_queue_occupancy_bytes, 90)
        # Same order of magnitude is the Figure 7b claim at this scale.
        assert qm == pytest.approx(qs, rel=0.6)

    def test_broadcast_byte_accounting_agrees(self, crossval_pair):
        maze, sim = crossval_pair
        # Identical trace, identical tree fanout: identical broadcast bytes.
        assert maze.broadcast_bytes == pytest.approx(sim.broadcast_bytes, rel=0.05)

    def test_per_flow_fct_correlated(self, crossval_pair):
        maze, sim = crossval_pair
        fm = {f.flow_id: f.fct_ns() for f in maze.completed_flows()}
        fs = {f.flow_id: f.fct_ns() for f in sim.completed_flows()}
        ids = sorted(set(fm) & set(fs))
        a = np.array([fm[i] for i in ids], dtype=float)
        b = np.array([fs[i] for i in ids], dtype=float)
        corr = np.corrcoef(a, b)[0, 1]
        assert corr > 0.8
