"""End-to-end scenarios exercising several subsystems together."""

import pytest

from repro.core import R2C2Config, Rack
from repro.sim import SimConfig, run_simulation
from repro.topology import FoldedClosTopology, HypercubeTopology, TorusTopology
from repro.types import usec
from repro.workloads import FixedSize, ParetoSizes, poisson_trace


class TestLifeOfAFlow:
    """§3.1's narrative, step by step."""

    def test_full_lifecycle(self, torus3d):
        rack = Rack(torus3d, R2C2Config(recompute_interval_ns=usec(500)))
        # 1. Flow starts; its announcement reaches every node.
        fid = rack.start_flow(0, 42)
        assert rack.tables_consistent()
        # 2. The sender computes the flow's allocation and rate-limits it.
        rack.advance_time(usec(500))
        rate = rack.rate_of(fid)
        assert 0 < rate
        # 3. Another flow arrives and shares the fabric after the epoch.
        other = rack.start_flow(1, 42)
        rack.advance_time(usec(500))
        assert rack.rate_of(fid) <= rate  # sharing cannot increase it
        # 4. Routing selection may reassign protocols.
        rack.select_routes(min_improvement=0.0)
        assert rack.tables_consistent()
        # 5. Flows finish; capacity returns.
        rack.finish_flow(other)
        rack.advance_time(usec(500))
        assert rack.rate_of(fid) >= rate * 0.99

    def test_headroom_reserved_end_to_end(self, torus2d):
        rack = Rack(torus2d, R2C2Config(headroom=0.10))
        rack.start_flow(0, 1)
        allocation = rack.recompute_all()
        assert allocation.link_capacity_bps.max() == pytest.approx(
            torus2d.capacity_bps * 0.9
        )


class TestAlternativeFabrics:
    """R2C2 is not torus-specific (§6): hypercubes and switched fabrics."""

    def test_hypercube_rack(self):
        topo = HypercubeTopology(4)
        rack = Rack(topo)
        fid = rack.start_flow(0, 15)
        rack.recompute_all()
        assert rack.rate_of(fid) > 0

    def test_folded_clos_rack(self):
        topo = FoldedClosTopology(16, radix=8)
        rack = Rack(topo)
        fid = rack.start_flow(0, 15)
        rack.recompute_all()
        # Host NIC is the bottleneck: exactly one access link's capacity.
        assert rack.rate_of(fid) == pytest.approx(
            topo.capacity_bps * (1 - rack.config.headroom)
        )

    def test_simulation_on_hypercube(self):
        topo = HypercubeTopology(4)
        trace = poisson_trace(topo, 30, 20_000, sizes=FixedSize(100_000), seed=5)
        metrics = run_simulation(topo, trace, SimConfig(stack="r2c2"))
        assert metrics.completion_rate() == 1.0


class TestDegradedFabric:
    def test_simulation_survives_link_removal(self, torus2d):
        degraded = torus2d.without_links([(0, 1), (1, 0)])
        trace = poisson_trace(degraded, 30, 20_000, sizes=FixedSize(50_000), seed=6)
        metrics = run_simulation(degraded, trace, SimConfig(stack="r2c2"))
        assert metrics.completion_rate() == 1.0

    def test_rates_shift_after_failure(self, torus2d):
        # Counter-intuitive but correct: losing the direct 0-1 cable turns a
        # single 1-hop path into many 3-hop paths, so a *lone* flow's
        # aggregate allocation goes up (it sprays over more first hops) —
        # while paying 3x the fabric capacity.  Check both effects.
        rack_full = Rack(torus2d)
        fid = rack_full.start_flow(0, 1)
        full = rack_full.recompute_all()

        degraded = torus2d.without_links([(0, 1), (1, 0)])
        assert degraded.distance(0, 1) == 3
        rack_degraded = Rack(degraded)
        fid2 = rack_degraded.start_flow(0, 1)
        deg = rack_degraded.recompute_all()
        assert deg.rates_bps[fid2] != full.rates_bps[fid]
        # Fabric cost per delivered bit tripled: total link load / rate.
        cost_full = full.link_load_bps.sum() / full.rates_bps[fid]
        cost_deg = deg.link_load_bps.sum() / deg.rates_bps[fid2]
        assert cost_full == pytest.approx(1.0)
        assert cost_deg == pytest.approx(3.0)


class TestWorkloadRealism:
    def test_pareto_workload_end_to_end(self, torus2d):
        trace = poisson_trace(
            torus2d,
            120,
            8_000,
            sizes=ParetoSizes(mean_bytes=60_000, shape=1.2, cap_bytes=2_000_000),
            seed=13,
        )
        metrics = run_simulation(torus2d, trace, SimConfig(stack="r2c2", seed=13))
        assert metrics.completion_rate() == 1.0
        summary = metrics.summary()
        assert summary["drops"] == 0
        assert metrics.broadcast_capacity_fraction() < 0.2
