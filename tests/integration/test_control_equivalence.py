"""The simulator's shared-control-plane optimization must be equivalent to
running per-node controllers fed by real broadcast deliveries.

Every node builds its table from the same broadcast stream, so once
deliveries quiesce all tables agree, and the water-fill — a deterministic
function of the table — produces identical allocations everywhere.  This is
the invariant that justifies computing it once in the simulator.
"""

import pytest

from repro.broadcast import BroadcastFib
from repro.core import R2C2Config, Rack
from repro.sim import EventLoop, KIND_BROADCAST, RackNetwork, SimPacket


class _CollectingNodeStack:
    """Minimal per-node stack: applies every broadcast to its own node."""

    def __init__(self, node, rack_node):
        self.node = node
        self.rack_node = rack_node

    def deliver(self, packet):
        assert packet.kind == KIND_BROADCAST
        if packet.src != self.node:
            self.rack_node.handle_broadcast(packet.payload)


class TestControlEquivalence:
    def test_broadcast_fed_tables_converge(self, torus2d):
        # Drive real 16-byte packets through the simulated fabric and feed
        # each node's control plane only from its own deliveries.
        rack = Rack(torus2d)  # provides per-node R2C2Node objects
        loop = EventLoop()
        fib = BroadcastFib(torus2d, n_trees=rack.config.n_broadcast_trees)
        net = RackNetwork(loop, torus2d, fib=fib)
        for node in torus2d.nodes():
            net.stack_at[node] = _CollectingNodeStack(node, rack.nodes[node])

        # Start flows via the node API but deliver the announcements as
        # real packets rather than Rack's instant delivery.
        events = [
            rack.nodes[0].start_flow(1, 5, protocol="rps"),
            rack.nodes[3].start_flow(2, 9, protocol="vlb", weight=2.0),
            rack.nodes[7].start_flow(3, 1, priority=1),
        ]
        for sender, data in zip((0, 3, 7), events):
            packet = SimPacket(
                kind=KIND_BROADCAST,
                flow_id=0,
                src=sender,
                dst=0,
                seq=0,
                size_bytes=len(data),
                tree_id=0,
                payload=data,
            )
            net.inject(sender, packet)
        loop.run()

        assert rack.tables_consistent()
        allocations = [
            node.controller.recompute(0).rates_bps for node in rack.nodes
        ]
        reference = allocations[0]
        for allocation in allocations[1:]:
            assert set(allocation) == set(reference)
            for flow_id in reference:
                assert allocation[flow_id] == pytest.approx(reference[flow_id])

    def test_senders_rate_limit_only_their_flows(self, torus2d):
        rack = Rack(torus2d)
        rack.start_flow(0, 5)
        rack.start_flow(3, 9)
        rack.recompute_all()
        assert set(rack.nodes[0].rates()) == {0}
        assert set(rack.nodes[3].rates()) == {1}
        assert rack.nodes[8].rates() == {}
