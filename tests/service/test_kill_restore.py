"""Kill/restart durability: a SIGKILLed daemon resumes bit-for-bit.

The contract (ISSUE acceptance): start ``repro serve`` with a snapshot
path, announce flows, SIGKILL the process (no shutdown hook runs), start
a fresh daemon from the same snapshot — and every ALLOC_REPLY must be
byte-identical both to the pre-kill answers and to an uninterrupted
in-process reference that replayed the same announcements.
"""

import os
import signal
import subprocess
import sys

import pytest

from repro.service import ServiceClient, ServiceState, read_port_file, spec_from_announce
from repro.topology import TorusTopology
from repro.wire.control import FlowAnnounce

pytestmark = pytest.mark.service

_DIMS = (3, 3)
_HEADROOM = 0.0

#: (flow_id, src, dst, protocol, weight, demand_bps) — mixed protocols,
#: weights and finite/infinite demands, all wire-quantization-exact.
_FLOWS = (
    (1, 0, 4, "ecmp", 1.0, float("inf")),
    (2, 0, 4, "ecmp", 2.0, float("inf")),
    (3, 1, 5, "rps", 1.0, 2_000 * 1e6),
    (4, 2, 8, "ecmp", 1.5, float("inf")),
    (5, 3, 7, "rps", 1.0, float("inf")),
    (6, 6, 2, "ecmp", 0.5, 500 * 1e6),
)


def _serve(tmp_path, tag):
    port_file = tmp_path / f"port-{tag}"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--topology",
            "torus",
            "--dims",
            "x".join(map(str, _DIMS)),
            "--headroom",
            str(_HEADROOM),
            "--snapshot",
            str(tmp_path / "snapshot.json"),
            "--port-file",
            str(port_file),
            "--seconds",
            "60",
        ],
        env={**os.environ, "PYTHONPATH": "src"},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        port = read_port_file(port_file, timeout=30.0)
    except Exception:
        process.kill()
        process.wait()
        raise
    return process, port


def _announce_all(client):
    for fid, src, dst, protocol, weight, demand in _FLOWS:
        client.announce(
            fid, src=src, dst=dst, protocol=protocol, weight=weight, demand_bps=demand
        )


def _reference_replies():
    """Uninterrupted in-process run over the identical (wire-quantized)
    announcements, encoding replies exactly like the daemon does."""
    state = ServiceState(TorusTopology(_DIMS), headroom=_HEADROOM)
    for fid, src, dst, protocol, weight, demand in _FLOWS:
        from repro.routing import protocol_class

        message = FlowAnnounce(
            flow_id=fid,
            src=src,
            dst=dst,
            protocol_id=protocol_class(protocol).protocol_id,
            weight=weight,
            demand_bps=demand,
        )
        decoded = FlowAnnounce.decode(message.encode())
        state.announce(spec_from_announce(decoded))
    return [state.query(fid).encode() for fid, *_ in _FLOWS]


def test_sigkill_then_restore_is_byte_identical(tmp_path):
    flow_ids = [fid for fid, *_ in _FLOWS]

    process, port = _serve(tmp_path, "first")
    try:
        with ServiceClient("127.0.0.1", port) as client:
            _announce_all(client)
            before = client.query_many_raw(flow_ids)
        # SIGKILL: no graceful shutdown, no final snapshot write.
        process.kill()
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    process, port = _serve(tmp_path, "second")
    try:
        with ServiceClient("127.0.0.1", port) as client:
            after = client.query_many_raw(flow_ids)
            # The restored daemon keeps serving mutations too.
            assert client.finish(flow_ids[0]).code == 0
            assert not client.query(flow_ids[0]).known
    finally:
        process.terminate()
        process.wait(timeout=30)

    assert after == before, "restored allocation answers differ from pre-kill"
    assert before == _reference_replies(), (
        "daemon answers differ from the uninterrupted in-process reference"
    )
