"""Unit tests for the incremental max-min allocator.

The invariant under test everywhere: after any supported operation the
incremental allocator's rates equal a from-scratch water-fill over the
same flow set (max-min allocations are unique, so "equal" is meaningful).
Operations it cannot certify must fall back to a counted full recompute,
never to a wrong answer.
"""

import math

import pytest

from repro.congestion import FlowSpec, IncrementalWaterfill
from repro.topology import TorusTopology
from repro.validation import FaultInjector, compare_against_scratch

pytestmark = pytest.mark.service


def _spec(fid, src, dst, **kw):
    return FlowSpec(flow_id=fid, src=src, dst=dst, protocol=kw.pop("protocol", "ecmp"), **kw)


@pytest.fixture
def torus():
    return TorusTopology((4, 4))


def assert_matches_scratch(inc, tol=1e-9):
    errors = compare_against_scratch(inc)
    worst = max(errors.values(), default=0.0)
    assert worst <= tol, f"incremental diverged from scratch by {worst}"


class TestArrivalsAndDepartures:
    def test_single_arrival_matches_scratch(self, torus):
        inc = IncrementalWaterfill(torus)
        inc.add_flow(_spec(1, 0, 5))
        assert_matches_scratch(inc)
        assert inc.n_flows == 1
        assert inc.rate(1) > 0

    def test_interleaved_ops_match_scratch(self, torus):
        inc = IncrementalWaterfill(torus)
        for fid in range(8):
            inc.add_flow(_spec(fid, fid, (fid + 7) % 16))
            assert_matches_scratch(inc)
        for fid in (2, 5):
            assert inc.remove_flow(fid)
            assert_matches_scratch(inc)
        inc.add_flow(_spec(9, 3, 12, weight=2.0))
        assert_matches_scratch(inc)

    def test_remove_unknown_flow_is_noop(self, torus):
        inc = IncrementalWaterfill(torus)
        inc.add_flow(_spec(1, 0, 5))
        before = inc.stats()
        assert not inc.remove_flow(42)
        assert inc.stats() == before

    def test_reannounce_replaces_spec(self, torus):
        inc = IncrementalWaterfill(torus)
        inc.add_flow(_spec(1, 0, 5))
        inc.add_flow(_spec(1, 0, 5, weight=4.0))
        assert inc.n_flows == 1
        assert [s.weight for s in inc.flows()] == [4.0]
        assert_matches_scratch(inc)

    def test_demand_update_matches_scratch(self, torus):
        inc = IncrementalWaterfill(torus)
        inc.add_flow(_spec(1, 0, 5))
        inc.add_flow(_spec(2, 0, 5))
        inc.update_demand(1, 0.1 * torus.capacity_bps)
        assert_matches_scratch(inc)
        assert inc.rate(1) == pytest.approx(0.1 * torus.capacity_bps)

    def test_departure_frees_capacity(self, torus):
        inc = IncrementalWaterfill(torus)
        inc.add_flow(_spec(1, 0, 1))
        inc.add_flow(_spec(2, 0, 1))
        shared = inc.rate(1)
        inc.remove_flow(2)
        assert inc.rate(1) > shared
        assert_matches_scratch(inc)


class TestFallbacks:
    def test_priorities_force_fallback(self, torus):
        inc = IncrementalWaterfill(torus)
        inc.add_flow(_spec(1, 0, 5))
        inc.add_flow(_spec(2, 0, 5, priority=1))
        stats = inc.stats()
        assert stats["fallback_recomputes"] >= 1
        assert "priorities" in stats["fallback_reasons"]
        assert_matches_scratch(inc)

    def test_protocol_update_forces_fallback(self, torus):
        inc = IncrementalWaterfill(torus)
        inc.add_flow(_spec(1, 0, 5))
        inc.update_protocol(1, "rps")
        stats = inc.stats()
        assert stats["fallback_reasons"].get("protocol_change") == 1
        assert [s.protocol for s in inc.flows()] == ["rps"]
        assert_matches_scratch(inc)

    def test_rebuild_on_degraded_topology(self, torus):
        inc = IncrementalWaterfill(torus)
        for fid in range(6):
            inc.add_flow(_spec(fid, fid, (fid + 5) % 16))
        degraded, failed = FaultInjector(seed=3).fail_links(
            torus, 2, require_connected=True, symmetric=True
        )
        assert failed
        inc.rebuild(topology=degraded)
        stats = inc.stats()
        assert stats["fallback_reasons"].get("rebuild") == 1
        assert inc.n_flows == 6
        assert_matches_scratch(inc)

    def test_incremental_ratio_reported(self, torus):
        inc = IncrementalWaterfill(torus)
        for fid in range(5):
            inc.add_flow(_spec(fid, fid, fid + 8))
        stats = inc.stats()
        assert stats["incremental_ops"] + stats["fallback_recomputes"] == 5
        assert 0.0 <= stats["incremental_ratio"] <= 1.0


class TestStateRoundTrip:
    def test_state_dict_restores_exact_rates(self, torus):
        inc = IncrementalWaterfill(torus)
        for fid in range(6):
            inc.add_flow(
                _spec(fid, fid, (fid + 3) % 16, demand_bps=(fid + 1) * 1e9)
            )
        state = inc.state_dict()
        clone = IncrementalWaterfill(torus)
        clone.load_state(state)
        for spec in inc.flows():
            assert clone.rate(spec.flow_id) == inc.rate(spec.flow_id)  # bit-exact
            assert clone.bottleneck(spec.flow_id) == inc.bottleneck(spec.flow_id)
        # The restored allocator keeps allocating correctly.
        clone.add_flow(_spec(99, 2, 13))
        assert_matches_scratch(clone)

    def test_state_dict_json_round_trip_is_lossless(self, torus):
        import json

        inc = IncrementalWaterfill(torus)
        inc.add_flow(_spec(1, 0, 5, demand_bps=math.inf))
        inc.add_flow(_spec(2, 1, 6, demand_bps=1e9 / 3.0))
        state = json.loads(json.dumps(inc.state_dict()))
        clone = IncrementalWaterfill(torus)
        clone.load_state(state)
        assert clone.rate(1) == inc.rate(1)
        assert clone.rate(2) == inc.rate(2)
