"""In-process daemon tests: the asyncio listener and the blocking client.

Each test runs the daemon inside ``asyncio.run`` and drives the blocking
:class:`ServiceClient` from an executor thread — no pytest-asyncio, no
subprocesses, no sleeps: the client's first connect only happens after
``start()`` has bound the listener.
"""

import asyncio
import math

import pytest

from repro.errors import ServiceError
from repro.service import ControlDaemon, ServiceClient, ServiceState
from repro.topology import TorusTopology
from repro.wire import control as ctl

pytestmark = pytest.mark.service


def _drive(state, fn):
    """Run the daemon, call ``fn(port)`` in a worker thread, tear down."""

    async def scenario():
        daemon = ControlDaemon(state)
        await daemon.start()
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(None, fn, daemon.port)
        finally:
            await daemon.stop()

    return asyncio.run(scenario())


@pytest.fixture
def state():
    return ServiceState(TorusTopology((3, 3)), headroom=0.0)


class TestRequestReply:
    def test_announce_query_finish(self, state):
        def script(port):
            with ServiceClient("127.0.0.1", port) as client:
                ack = client.announce(1, src=0, dst=4, protocol="ecmp")
                assert ack.code == ctl.ACK_OK
                reply = client.query(1)
                assert reply.known and reply.rate_bps > 0
                assert reply.bottleneck_link is not None
                fin = client.finish(1)
                assert fin.code == ctl.ACK_OK
                assert not client.query(1).known

        _drive(state, script)
        assert state.announces == 1 and state.finishes == 1 and state.queries == 2

    def test_query_answers_match_state_bytes(self, state):
        def script(port):
            with ServiceClient("127.0.0.1", port) as client:
                for fid in range(4):
                    client.announce(fid, src=fid, dst=(fid + 4) % 9)
                return client.query_many_raw(range(4))

        raw = _drive(state, script)
        queries_before = state.queries
        expected = [state.query(fid).encode() for fid in range(4)]
        assert raw == expected
        assert state.queries == queries_before + 4

    def test_finish_unknown_flow_acked_as_unknown(self, state):
        def script(port):
            with ServiceClient("127.0.0.1", port) as client:
                assert client.finish(404).code == ctl.ACK_UNKNOWN_FLOW
                assert not client.query(404).known

        _drive(state, script)

    def test_demand_survives_wire_quantization(self, state):
        demand = 1_500 * 1e6  # whole Mbps: quantization-exact on the wire

        def script(port):
            with ServiceClient("127.0.0.1", port) as client:
                client.announce(1, src=0, dst=4, demand_bps=demand)
                return client.query(1).rate_bps

        rate = _drive(state, script)
        assert rate == pytest.approx(demand)
        (spec,) = state.incremental.flows()
        assert spec.demand_bps == demand


class TestSnapshotStream:
    def test_subscriber_sees_mutations(self, state):
        def script(port):
            with ServiceClient("127.0.0.1", port) as sub:
                first = sub.subscribe()
                with ServiceClient("127.0.0.1", port) as mutator:
                    mutator.announce(7, src=1, dst=5)
                pushed = sub.next_snapshot()
                return first, pushed

        first, pushed = _drive(state, script)
        assert first.seq == 0 and first.payload["flows"] == 0
        assert pushed.seq == 1
        assert pushed.payload["flows"] == 1
        assert pushed.payload["announces"] == 1

    def test_bounded_subscription_closes_after_budget(self, state):
        def script(port):
            with ServiceClient("127.0.0.1", port) as sub:
                event = sub.subscribe(max_events=1)
                assert event.seq == 0
                # Budget spent: the daemon must not push further events.
                with ServiceClient("127.0.0.1", port) as mutator:
                    mutator.announce(1, src=0, dst=4)
                sub.send(ctl.AllocQuery(1))
                return sub.recv()

        reply = _drive(state, script)
        # The next frame on the wire is our reply, not a snapshot push.
        assert isinstance(reply, ctl.AllocReply) and reply.known


class TestProtocolErrors:
    def test_corrupt_frame_gets_error_and_close(self, state):
        def script(port):
            with ServiceClient("127.0.0.1", port) as client:
                good = ctl.AllocQuery(1).encode()
                bad = bytes([good[0]]) + bytes(len(good) - 1)  # checksum dead
                client.send_raw(bad)
                err = client.recv()
                assert isinstance(err, ctl.ControlError)
                assert err.code == ctl.ERR_MALFORMED
                # Daemon closes the stream after a malformed frame.
                with pytest.raises(ServiceError):
                    client.recv()

        _drive(state, script)

    def test_server_only_message_rejected(self, state):
        def script(port):
            with ServiceClient("127.0.0.1", port) as client:
                client.send(ctl.AllocReply(flow_id=1, known=False))
                err = client.recv()
                assert isinstance(err, ctl.ControlError)
                assert err.code == ctl.ERR_UNSUPPORTED

        _drive(state, script)

    def test_unroutable_announce_rejected_not_fatal(self, state):
        def script(port):
            with ServiceClient("127.0.0.1", port) as client:
                client.send(
                    ctl.FlowAnnounce(flow_id=1, src=0, dst=9999)  # off-rack dst
                )
                err = client.recv()
                assert isinstance(err, ctl.ControlError)
                assert err.code == ctl.ERR_REJECTED
                # The connection (and the daemon) keeps serving.
                ack = client.announce(2, src=0, dst=4)
                assert ack.code == ctl.ACK_OK

        _drive(state, script)
        assert state.incremental.n_flows == 1

    def test_client_surfaces_error_as_service_error(self, state):
        def script(port):
            with ServiceClient("127.0.0.1", port) as client:
                client.send_raw(b"\x70")
                with pytest.raises(ServiceError):
                    client.query(1)

        _drive(state, script)


class TestDurability:
    def test_every_mutation_persists_a_snapshot(self, tmp_path):
        snap = tmp_path / "state.json"
        state = ServiceState(
            TorusTopology((3, 3)), headroom=0.0, snapshot_path=str(snap)
        )

        def script(port):
            with ServiceClient("127.0.0.1", port) as client:
                client.announce(1, src=0, dst=4)
                client.announce(2, src=1, dst=5)
                client.finish(1)

        _drive(state, script)
        assert snap.exists()
        restored = ServiceState(
            TorusTopology((3, 3)), headroom=0.0, snapshot_path=str(snap)
        )
        assert restored.restored
        assert restored.seq == state.seq == 3
        assert restored.incremental.n_flows == 1
        assert restored.query(2).encode() == state.query(2).encode()
