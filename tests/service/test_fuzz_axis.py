"""The fuzzer's churn axis replays against the daemon's state machine.

``kind="churn"`` scenarios drawn by :mod:`repro.fuzz.generator` execute
through the same :class:`~repro.service.state.ServiceState` entry points
the asyncio daemon dispatches to (announce/finish), with the scratch
cross-check judging every step — so the fuzzer exercises the control
plane in-process, no sockets required.
"""

import pytest

from repro.experiments import Campaign
from repro.experiments.tasks import execute_task
from repro.fuzz import generate_scenario
from repro.validation import sim_result_verdicts

pytestmark = pytest.mark.service


def _churn_scenarios(count, with_fallback=None):
    found = []
    for seed in range(4000):
        scenario = generate_scenario(seed, f"churn-{seed:05d}")
        if scenario.kind != "churn":
            continue
        has_fallback = scenario.param("fallback_at") is not None
        if with_fallback is not None and has_fallback != with_fallback:
            continue
        found.append(scenario)
        if len(found) == count:
            return found
    raise AssertionError("generator never produced the requested churn specs")


def _execute(scenario):
    campaign = Campaign(name="t", scenarios=(scenario,), seed=3)
    (task,) = campaign.expand()
    return execute_task(task)


class TestFuzzChurnAxis:
    def test_generated_churn_scenarios_pass_the_oracle(self):
        for scenario in _churn_scenarios(3):
            result = _execute(scenario)
            verdicts = {v.oracle: v for v in sim_result_verdicts(result)}
            assert verdicts["churn_vs_scratch"].ok, scenario.name
            assert result["churn"]["checks"] > 0

    def test_fallback_injection_scenarios_force_recomputes(self):
        (scenario,) = _churn_scenarios(1, with_fallback=True)
        result = _execute(scenario)
        assert result["churn"]["fallback_reasons"].get("rebuild") == 1
        assert sim_result_verdicts(result)[-1].ok

    def test_replay_is_deterministic(self):
        (scenario,) = _churn_scenarios(1)
        assert _execute(scenario) == _execute(scenario)
