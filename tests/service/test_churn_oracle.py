"""The churn oracle: incremental allocation == scratch after every op.

ISSUE acceptance: a seeded 10k-operation arrival/departure/demand
sequence, cross-checked against a from-scratch water-fill after **every**
operation (tolerance 1e-6), including a forced multi-link fallback step
injected mid-sequence via the fault injector's failure views.
"""

import pytest

from repro.service import run_churn
from repro.topology import TorusTopology
from repro.validation import CHURN_TOLERANCE, churn_case, churn_report

pytestmark = pytest.mark.service


class TestChurnOracle:
    def test_10k_op_sequence_with_forced_fallback(self):
        case = churn_case(
            seed=1205,
            n_ops=10_000,
            n_nodes=8,
            max_flows=24,
            fallback_at=5_000,
            fail_links=1,
            check_every=1,
        )
        assert case.max_rel_error <= CHURN_TOLERANCE, case.max_rel_error
        assert case.n_flows > 0

    def test_report_over_seeds_with_periodic_fallbacks(self):
        report = churn_report(
            n_cases=6, seed=0, n_ops=150, max_flows=16, fallback_every=3
        )
        assert report.ok, report.max_rel_error
        assert report.n_cases == 6
        assert report.max_rel_error <= CHURN_TOLERANCE

    def test_failure_view_flip_regression(self):
        """A mid-sequence failure-view flip (failed links change route
        membership on many links at once) must route through the counted
        full-recompute fallback and still match scratch afterwards."""
        result = run_churn(
            TorusTopology((4, 4)),
            seed=77,
            n_ops=200,
            max_flows=16,
            fallback_at=100,
            fail_links=2,
        )
        churn = result["churn"]
        assert churn["max_rel_error"] <= churn["tolerance"]
        assert churn["fallback_reasons"].get("rebuild") == 1
        assert churn["fallback_recomputes"] >= 1
        # The overwhelming majority of single-flow ops stayed incremental.
        assert churn["incremental_ops"] > churn["fallback_recomputes"] * 10

    def test_run_churn_is_deterministic(self):
        a = run_churn(TorusTopology((3, 3)), seed=9, n_ops=120, max_flows=12)
        b = run_churn(TorusTopology((3, 3)), seed=9, n_ops=120, max_flows=12)
        assert a == b
        assert a["churn"]["allocation_digest"] == b["churn"]["allocation_digest"]

    def test_different_seeds_diverge(self):
        a = run_churn(TorusTopology((3, 3)), seed=1, n_ops=120, max_flows=12)
        b = run_churn(TorusTopology((3, 3)), seed=2, n_ops=120, max_flows=12)
        assert a["churn"]["allocation_digest"] != b["churn"]["allocation_digest"]
