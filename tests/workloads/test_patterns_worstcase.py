"""Tests for traffic patterns and the worst-case adversary."""

import pytest

from repro.errors import ReproError
from repro.routing import DestinationTagRouting, RandomPacketSpraying, ValiantLoadBalancing
from repro.topology import TorusTopology
from repro.workloads import (
    STANDARD_PATTERNS,
    BitComplementPattern,
    BitReversePattern,
    NearestNeighborPattern,
    PermutationPattern,
    TornadoPattern,
    TransposePattern,
    UniformPattern,
    worst_case_permutation,
    worst_case_throughput,
)


@pytest.fixture
def cube8():
    """8-ary 2-cube, the Figure 2 topology."""
    return TorusTopology((8, 8))


class TestPatterns:
    def test_all_standard_patterns_valid(self, cube8):
        for pattern in STANDARD_PATTERNS.values():
            pattern.validate(cube8)

    def test_uniform_covers_all_pairs(self, torus2d):
        matrix = UniformPattern().matrix(torus2d)
        assert len(matrix) == 16 * 15
        assert sum(v for (s, _), v in matrix.items() if s == 0) == pytest.approx(1.0)

    def test_nearest_neighbor_splits_over_neighbors(self, torus2d):
        matrix = NearestNeighborPattern().matrix(torus2d)
        for (src, dst), frac in matrix.items():
            assert torus2d.has_link(src, dst)
            assert frac == pytest.approx(1.0 / 4)

    def test_bit_complement_is_involution(self, cube8):
        matrix = BitComplementPattern().matrix(cube8)
        mapping = {s: d for (s, d) in matrix}
        for s, d in mapping.items():
            assert mapping.get(d) == s

    def test_transpose(self, cube8):
        matrix = TransposePattern().matrix(cube8)
        src = cube8.node_at((1, 3))
        assert (src, cube8.node_at((3, 1))) in matrix
        # Diagonal nodes send nothing.
        assert not any(s == cube8.node_at((2, 2)) for (s, _) in matrix)

    def test_transpose_needs_equal_dims(self):
        with pytest.raises(ReproError):
            TransposePattern().matrix(TorusTopology((4, 8)))

    def test_tornado_shift(self, cube8):
        matrix = TornadoPattern().matrix(cube8)
        src = cube8.node_at((0, 0))
        assert (src, cube8.node_at((3, 0))) in matrix  # ceil(8/2)-1 = 3

    def test_bit_reverse(self):
        topo = TorusTopology((4, 4))
        matrix = BitReversePattern().matrix(topo)
        assert (1, 8) in matrix  # 0b0001 -> 0b1000

    def test_permutation_pattern_validates_range(self, torus2d):
        pattern = PermutationPattern({0: 99})
        with pytest.raises(ReproError):
            pattern.matrix(torus2d)

    def test_patterns_need_coordinates(self, line3):
        with pytest.raises(ReproError):
            BitComplementPattern().matrix(line3)


class TestWorstCase:
    def test_vlb_worst_case_is_half(self, cube8):
        # Figure 2's defining VLB property: 0.5 on *every* pattern,
        # including its worst case.
        vlb = ValiantLoadBalancing(cube8)
        assert worst_case_throughput(vlb) == pytest.approx(0.5, abs=0.06)

    def test_minimal_routing_worst_case_below_half(self, cube8):
        # Figure 2: RPS 0.21, DOR 0.25 — both well below VLB's 0.5.
        rps_wc = worst_case_throughput(RandomPacketSpraying(cube8))
        dor_wc = worst_case_throughput(DestinationTagRouting(cube8))
        assert rps_wc < 0.35
        assert dor_wc < 0.35

    def test_worst_case_is_worse_than_uniform(self, cube8):
        from repro.analysis import saturation_throughput

        rps = RandomPacketSpraying(cube8)
        uniform = saturation_throughput(rps, UniformPattern().matrix(cube8))
        assert worst_case_throughput(rps) < uniform

    def test_worst_permutation_is_a_permutation(self, torus2d):
        rps = RandomPacketSpraying(torus2d)
        perm, load = worst_case_permutation(rps)
        assert load > 0
        assert len(set(perm.values())) == len(perm)
        assert all(s != d for s, d in perm.items())

    def test_permutation_achieves_reported_load(self, torus2d):
        from repro.analysis import channel_loads

        rps = RandomPacketSpraying(torus2d)
        perm, load = worst_case_permutation(rps)
        matrix = PermutationPattern(perm).matrix(torus2d)
        assert channel_loads(rps, matrix).max() == pytest.approx(load)
