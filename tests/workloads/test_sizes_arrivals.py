"""Tests for flow-size distributions, arrival processes and traces."""

import random

import pytest

from repro.errors import ReproError
from repro.workloads import (
    BurstArrivals,
    DeterministicArrivals,
    EmpiricalSizes,
    FixedSize,
    ParetoSizes,
    PoissonArrivals,
    permutation_load_trace,
    poisson_trace,
    trace_from_matrix,
    uniform_random_pair,
)


class TestSizes:
    def test_fixed(self, rng):
        assert FixedSize(1000).sample(rng) == 1000
        with pytest.raises(ReproError):
            FixedSize(0)

    def test_pareto_mean(self, rng):
        dist = ParetoSizes(mean_bytes=100 * 1024, shape=1.5)
        samples = dist.sample_many(rng, 20000)
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(100 * 1024, rel=0.2)

    def test_pareto_heavy_tail_claim(self):
        # §5.2: shape 1.05, mean 100 KB -> "95% of the flows are less than
        # 100 KB".
        dist = ParetoSizes(mean_bytes=100 * 1024, shape=1.05)
        assert dist.fraction_below(100 * 1024) > 0.93

    def test_pareto_minimum(self, rng):
        dist = ParetoSizes(mean_bytes=100 * 1024, shape=1.05)
        assert all(s >= int(dist.x_min) for s in dist.sample_many(rng, 1000))

    def test_pareto_cap(self, rng):
        dist = ParetoSizes(mean_bytes=100 * 1024, shape=1.05, cap_bytes=10 ** 6)
        assert max(dist.sample_many(rng, 5000)) <= 10 ** 6

    def test_pareto_validation(self):
        with pytest.raises(ReproError):
            ParetoSizes(shape=1.0)
        with pytest.raises(ReproError):
            ParetoSizes(mean_bytes=0)

    def test_empirical_data_mining_shape(self, rng):
        dist = EmpiricalSizes.data_mining()
        samples = dist.sample_many(rng, 20000)
        small = sum(1 for s in samples if s <= 10_000) / len(samples)
        # [25]: ~80% of flows below 10 KB.
        assert small == pytest.approx(0.8, abs=0.05)

    def test_empirical_validation(self):
        with pytest.raises(ReproError):
            EmpiricalSizes([(100, 0.5)])
        with pytest.raises(ReproError):
            EmpiricalSizes([(100, 0.5), (50, 1.0)])
        with pytest.raises(ReproError):
            EmpiricalSizes([(100, 0.5), (200, 0.9)])


class TestArrivals:
    def test_poisson_mean(self, rng):
        proc = PoissonArrivals(mean_interarrival_ns=1000)
        times = proc.first_n(rng, 5000)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert sum(gaps) / len(gaps) == pytest.approx(1000, rel=0.1)

    def test_monotone(self, rng):
        times = PoissonArrivals(100).first_n(rng, 100)
        assert times == sorted(times)

    def test_deterministic(self, rng):
        assert DeterministicArrivals(10).first_n(rng, 3) == [10, 20, 30]

    def test_bursts(self, rng):
        times = BurstArrivals(10_000, burst_size=4).first_n(rng, 8)
        assert times[0] == times[1] == times[2] == times[3]
        assert times[4] > times[3]

    def test_validation(self):
        with pytest.raises(ReproError):
            PoissonArrivals(0)
        with pytest.raises(ReproError):
            BurstArrivals(100, 0)


class TestTraces:
    def test_poisson_trace_shape(self, torus2d):
        trace = poisson_trace(torus2d, 100, 1000, seed=5)
        assert len(trace) == 100
        assert all(a.src != a.dst for a in trace)
        assert [a.flow_id for a in trace] == list(range(100))
        starts = [a.start_ns for a in trace]
        assert starts == sorted(starts)

    def test_trace_deterministic_by_seed(self, torus2d):
        a = poisson_trace(torus2d, 50, 1000, seed=9)
        b = poisson_trace(torus2d, 50, 1000, seed=9)
        assert a == b
        c = poisson_trace(torus2d, 50, 1000, seed=10)
        assert a != c

    def test_uniform_random_pair(self, torus2d, rng):
        for _ in range(200):
            src, dst = uniform_random_pair(torus2d, rng)
            assert src != dst
            assert 0 <= src < 16 and 0 <= dst < 16

    def test_permutation_load_trace(self, torus3d):
        trace = permutation_load_trace(torus3d, load=0.5, seed=2)
        assert len(trace) == 32
        sources = [a.src for a in trace]
        dests = [a.dst for a in trace]
        assert len(set(sources)) == len(sources)
        assert len(set(dests)) == len(dests)
        assert all(s != d for s, d in zip(sources, dests))

    def test_permutation_full_load(self, torus2d):
        trace = permutation_load_trace(torus2d, load=1.0, seed=3)
        assert len(trace) == 16

    def test_permutation_load_validation(self, torus2d):
        with pytest.raises(ReproError):
            permutation_load_trace(torus2d, load=1.5)

    def test_trace_from_matrix(self, torus2d):
        from repro.workloads import NearestNeighborPattern

        matrix = NearestNeighborPattern().matrix(torus2d)
        trace = trace_from_matrix(torus2d, matrix)
        assert len(trace) == len(matrix)
        assert all(a.weight == pytest.approx(0.25) for a in trace)
