"""Shared fixtures for the test suite.

Fixtures are deliberately small (4x4 torus and friends) so the whole suite
stays fast; scale-sensitive checks live in benchmarks/.
"""

from __future__ import annotations

import random

import pytest

from repro.congestion.linkweights import WeightProvider
from repro.topology import (
    FoldedClosTopology,
    GraphTopology,
    HypercubeTopology,
    MeshTopology,
    TorusTopology,
)


@pytest.fixture
def torus2d():
    """4x4 2D torus (the Figure 7 cross-validation topology, scaled)."""
    return TorusTopology((4, 4))


@pytest.fixture
def torus3d():
    """4x4x4 3D torus (the evaluation topology family, scaled)."""
    return TorusTopology((4, 4, 4))


@pytest.fixture
def mesh2d():
    """4x4 2D mesh (no wraparound)."""
    return MeshTopology((4, 4))


@pytest.fixture
def hypercube():
    """16-node binary hypercube."""
    return HypercubeTopology(4)


@pytest.fixture
def clos():
    """Small folded Clos: 16 hosts on radix-8 switches."""
    return FoldedClosTopology(16, radix=8)


@pytest.fixture
def line3():
    """0 - 1 - 2 path graph; the smallest multi-hop topology."""
    return GraphTopology(3, [(0, 1), (1, 2)], name="line3")


@pytest.fixture
def fig4_topology():
    """The paper's Figure 4 example graph (capacity 1 for easy numbers).

    Node ids map the figure's 1..4 to 0..3; undirected links 1-4, 1-3,
    3-4 and 2-3.
    """
    return GraphTopology(
        4, [(0, 3), (0, 2), (2, 3), (1, 2)], capacity_bps=1.0, latency_ns=0
    )


@pytest.fixture
def provider(torus2d):
    """A weight provider on the 2D torus."""
    return WeightProvider(torus2d)


@pytest.fixture
def rng():
    """A deterministic RNG for sampling tests."""
    return random.Random(1234)
