"""Tests for the event loop and the simulated network fabric."""

import pytest

from repro.broadcast import BroadcastFib
from repro.errors import SimulationError
from repro.sim import (
    EventLoop,
    FifoQueue,
    KIND_BROADCAST,
    KIND_DATA,
    PerFlowRoundRobin,
    RackNetwork,
    SimPacket,
)
from repro.types import transmission_time_ns


class TestEventLoop:
    def test_ordering(self):
        loop = EventLoop()
        order = []
        loop.schedule(10, lambda: order.append("b"))
        loop.schedule(5, lambda: order.append("a"))
        loop.schedule(10, lambda: order.append("c"))  # FIFO among ties
        loop.run()
        assert order == ["a", "b", "c"]
        assert loop.now == 10

    def test_until_bound(self):
        loop = EventLoop()
        fired = []
        loop.schedule(100, lambda: fired.append(1))
        loop.run(until_ns=50)
        assert not fired
        assert loop.now == 50
        loop.run(until_ns=150)
        assert fired

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        loop = EventLoop()
        loop.schedule(10, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.schedule_at(5, lambda: None)

    def test_cascading_events(self):
        loop = EventLoop()
        hits = []

        def chain(n):
            hits.append(n)
            if n < 3:
                loop.schedule(1, lambda: chain(n + 1))

        loop.schedule(0, lambda: chain(0))
        loop.run()
        assert hits == [0, 1, 2, 3]
        assert loop.events_processed == 4

    def test_max_events_bound(self):
        loop = EventLoop()

        def forever():
            loop.schedule(1, forever)

        loop.schedule(0, forever)
        processed = loop.run(max_events=10)
        assert processed == 10


class TestEventLoopBatch:
    def test_run_batch_matches_run(self):
        """run_batch must be semantically identical to run."""
        def drive(runner):
            loop = EventLoop()
            order = []
            loop.schedule(10, lambda: order.append("b"))
            loop.schedule(5, lambda: order.append("a"))
            loop.schedule(10, lambda: order.append("c"))
            runner(loop, 7)
            mid = (list(order), loop.now)
            runner(loop, None)
            return mid, list(order), loop.now, loop.events_processed

        plain = drive(lambda loop, until: loop.run(until_ns=until))
        fast = drive(lambda loop, until: loop.run_batch(until_ns=until))
        assert plain == fast

    def test_run_batch_advances_clock_to_until(self):
        loop = EventLoop()
        loop.run_batch(until_ns=40)
        assert loop.now == 40
        with pytest.raises(SimulationError):
            loop.run_batch(until_ns=10)

    def test_run_batch_falls_back_with_observer(self):
        loop = EventLoop()
        seen = []

        class Observer:
            def on_event(self, at_ns, prio, seq):
                seen.append((at_ns, prio, seq))

        loop.attach_observer(Observer())
        loop.schedule(5, lambda: None)
        loop.schedule(5, lambda: None)
        assert loop.run_batch() == 2
        assert len(seen) == 2  # observer still sees every event

    def test_run_batch_respects_max_events(self):
        loop = EventLoop()
        for _ in range(5):
            loop.schedule(1, lambda: None)
        assert loop.run_batch(max_events=2) == 2
        assert loop.pending() == 3

    def test_schedule_batch_runs_in_order_as_one_event(self):
        loop = EventLoop()
        order = []
        loop.schedule(10, lambda: order.append("before"))
        loop.schedule_batch(10, [lambda i=i: order.append(i) for i in range(3)])
        loop.schedule(10, lambda: order.append("after"))
        processed = loop.run()
        assert order == ["before", 0, 1, 2, "after"]
        assert processed == 3  # the batch counts once

    def test_schedule_batch_empty_and_singleton(self):
        loop = EventLoop()
        fired = []
        loop.schedule_batch(5, [])
        loop.schedule_batch(5, [lambda: fired.append(1)])
        assert loop.run() == 1
        assert fired == [1]


class TestEventLoopTimeValidation:
    """NaN/fractional delays would silently corrupt heap ordering."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf"), 1.5])
    def test_non_integral_delay_rejected(self, bad):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(bad, lambda: None)

    @pytest.mark.parametrize("bad", [float("nan"), 2.25, "10", None, object()])
    def test_non_integral_timestamp_rejected(self, bad):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule_at(bad, lambda: None)

    def test_integral_float_accepted(self):
        loop = EventLoop()
        fired = []
        loop.schedule(10.0, lambda: fired.append(loop.now))
        loop.run()
        assert fired == [10]
        assert isinstance(loop.now, int)

    def test_index_like_delay_accepted(self):
        class NanoSeconds:
            def __index__(self):
                return 7

        loop = EventLoop()
        loop.schedule(NanoSeconds(), lambda: None)
        loop.run()
        assert loop.now == 7

    def test_run_until_past_rejected(self):
        loop = EventLoop()
        loop.schedule(10, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.run_until(5)

    def test_run_until_nan_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.run_until(float("nan"))

    def test_run_until_advances_clock(self):
        loop = EventLoop()
        fired = []
        loop.schedule(100, lambda: fired.append(1))
        assert loop.run_until(50) == 0
        assert loop.now == 50 and not fired
        assert loop.run_until(100) == 1
        assert fired == [1]

    def test_observer_sees_every_event(self):
        seen = []

        class Observer:
            def on_event(self, at_ns, prio, seq):
                seen.append((at_ns, prio, seq))

        loop = EventLoop()
        loop.attach_observer(Observer())
        loop.schedule(5, lambda: None)
        loop.schedule(5, lambda: None)
        loop.schedule(2, lambda: None)
        loop.run()
        assert len(seen) == 3
        assert seen == sorted(seen)  # time-ordered, FIFO among ties


class TestQueues:
    def test_fifo_order_and_limit(self):
        q = FifoQueue(limit_bytes=250)
        a = SimPacket(KIND_DATA, 1, 0, 1, 0, 100)
        b = SimPacket(KIND_DATA, 1, 0, 1, 1, 100)
        c = SimPacket(KIND_DATA, 1, 0, 1, 2, 100)
        assert q.enqueue(a) and q.enqueue(b)
        assert not q.enqueue(c)  # over the 250-byte limit
        assert q.dequeue() is a
        assert q.enqueue(c)
        assert q.dequeue() is b and q.dequeue() is c
        assert q.dequeue() is None

    def test_per_flow_round_robin_fairness(self):
        q = PerFlowRoundRobin()
        for seq in range(3):
            q.enqueue(SimPacket(KIND_DATA, 1, 0, 1, seq, 10))
            q.enqueue(SimPacket(KIND_DATA, 2, 0, 1, seq, 10))
        order = [q.dequeue().flow_id for _ in range(6)]
        # Alternates between the two flows.
        assert order in ([1, 2, 1, 2, 1, 2], [2, 1, 2, 1, 2, 1])

    def test_per_flow_pause_resume(self):
        q = PerFlowRoundRobin()
        q.enqueue(SimPacket(KIND_DATA, 1, 0, 1, 0, 10))
        q.enqueue(SimPacket(KIND_DATA, 2, 0, 1, 0, 10))
        q.pause(1)
        assert q.dequeue().flow_id == 2
        assert q.dequeue() is None  # flow 1 paused
        q.resume(1)
        assert q.dequeue().flow_id == 1

    def test_per_flow_occupancy(self):
        q = PerFlowRoundRobin()
        q.enqueue(SimPacket(KIND_DATA, 7, 0, 1, 0, 120))
        assert q.flow_occupancy_bytes(7) == 120
        assert q.occupancy_bytes == 120


class _Sink:
    def __init__(self):
        self.received = []

    def deliver(self, packet):
        self.received.append(packet)


class TestRackNetwork:
    def make(self, topology, fib=None):
        loop = EventLoop()
        net = RackNetwork(loop, topology, fib=fib)
        sinks = []
        for node in topology.nodes():
            sink = _Sink()
            net.stack_at[node] = sink
            sinks.append(sink)
        return loop, net, sinks

    def test_source_routed_delivery(self, torus2d):
        loop, net, sinks = self.make(torus2d)
        packet = SimPacket(KIND_DATA, 1, 0, 5, 0, 1000, path=(0, 1, 5))
        net.inject(0, packet)
        loop.run()
        assert sinks[5].received == [packet]
        assert all(not s.received for i, s in enumerate(sinks) if i != 5)

    def test_delivery_latency(self, torus2d):
        loop, net, sinks = self.make(torus2d)
        packet = SimPacket(KIND_DATA, 1, 0, 5, 0, 1000, path=(0, 1, 5))
        net.inject(0, packet)
        loop.run()
        serialization = transmission_time_ns(1000, torus2d.capacity_bps)
        expected = 2 * (serialization + torus2d.latency_ns)
        assert loop.now == expected

    def test_wrong_route_detected(self, torus2d):
        loop, net, _ = self.make(torus2d)
        bad = SimPacket(KIND_DATA, 1, 0, 5, 0, 100, path=(3, 5))
        with pytest.raises(SimulationError):
            net.inject(0, bad)

    def test_broadcast_reaches_all(self, torus2d):
        fib = BroadcastFib(torus2d, n_trees=2)
        loop, net, sinks = self.make(torus2d, fib=fib)
        packet = SimPacket(KIND_BROADCAST, 9, 3, 0, 0, 16, tree_id=1)
        net.inject(3, packet)
        loop.run()
        for sink in sinks:
            assert len(sink.received) == 1

    def test_broadcast_without_fib_raises(self, torus2d):
        loop, net, _ = self.make(torus2d)
        with pytest.raises(SimulationError):
            net.inject(0, SimPacket(KIND_BROADCAST, 1, 0, 0, 0, 16))

    def test_queue_stats(self, torus2d):
        loop, net, _ = self.make(torus2d)
        for seq in range(5):
            net.inject(0, SimPacket(KIND_DATA, 1, 0, 1, seq, 1500, path=(0, 1)))
        loop.run()
        port = net.port(0, 1)
        assert port.packets_sent == 5
        assert port.bytes_sent == 7500
        assert port.max_occupancy_bytes > 0
        assert net.total_bytes_sent() == 7500

    def test_missing_stack_raises(self, torus2d):
        loop = EventLoop()
        net = RackNetwork(loop, torus2d)
        net.inject(0, SimPacket(KIND_DATA, 1, 0, 1, 0, 100, path=(0, 1)))
        with pytest.raises(SimulationError):
            loop.run()

    def test_drop_callback(self, torus2d):
        loop = EventLoop()
        drops = []
        net = RackNetwork(
            loop,
            torus2d,
            queue_factory=lambda: FifoQueue(limit_bytes=100),
            on_drop=lambda node, pkt: drops.append((node, pkt.seq)),
        )
        net.stack_at[1] = _Sink()
        # First packet goes straight to the transmitter (queue stays empty),
        # the second fills the 100-byte queue, the third is dropped.
        assert net.port(0, 1).send(SimPacket(KIND_DATA, 1, 0, 1, 0, 100, path=(0, 1)))
        assert net.port(0, 1).send(SimPacket(KIND_DATA, 1, 0, 1, 1, 100, path=(0, 1)))
        assert not net.port(0, 1).send(
            SimPacket(KIND_DATA, 1, 0, 1, 2, 100, path=(0, 1))
        )
        assert net.total_drops() == 1
        assert drops == [(0, 2)]
        loop.run()
