"""Seed determinism: the simulator is a pure function of (inputs, seed).

Identical seeds must reproduce byte-identical metrics (wallclock excluded);
different seeds must actually change the randomized decisions (packet
spraying, tree staggering), or the seed plumbing has silently broken.
"""

import json

import pytest

from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.types import gbps
from repro.workloads import FixedSize, poisson_trace

pytestmark = pytest.mark.validation


def _canonical_metrics(metrics) -> bytes:
    """Everything observable from a run except wallclock, as stable bytes."""
    payload = {
        "flows": [
            {
                "id": f.flow_id,
                "bytes_received": f.bytes_received,
                "completed_ns": f.completed_ns,
                "sender_done_ns": f.sender_done_ns,
                "max_reorder": f.max_reorder_buffer,
            }
            for f in sorted(metrics.flows, key=lambda f: f.flow_id)
        ],
        "queues": sorted(metrics.max_queue_occupancy_bytes),
        "events": metrics.events_processed,
        "duration_ns": metrics.duration_ns,
        "total_bytes": metrics.total_bytes_on_wire,
        "broadcast_bytes": metrics.broadcast_bytes,
        "drops": metrics.drops,
        "wire_losses": metrics.wire_losses,
        "latency_count": metrics.packet_latency.count,
        "latency_total_ns": metrics.packet_latency.total_ns,
        "latency_max_ns": metrics.packet_latency.max_ns,
    }
    return json.dumps(payload, sort_keys=True).encode()


def _run(seed: int, stack: str = "r2c2") -> bytes:
    topo = TorusTopology((3, 3), capacity_bps=gbps(10))
    trace = poisson_trace(topo, 25, 5_000, sizes=FixedSize(40_000), seed=99)
    metrics = run_simulation(
        topo, trace, SimConfig(stack=stack, mtu_payload=1500, seed=seed)
    )
    return _canonical_metrics(metrics)


class TestSeedDeterminism:
    @pytest.mark.parametrize("stack", ["r2c2", "tcp", "pfq"])
    def test_same_seed_byte_identical(self, stack):
        assert _run(3, stack) == _run(3, stack)

    def test_different_seeds_differ(self):
        # RPS path sampling is seeded, so a different seed must change the
        # spray pattern and with it the observable metrics.
        assert _run(3) != _run(4)

    def test_audited_rerun_matches_unaudited(self):
        """The auditor must observe, never perturb."""
        topo = TorusTopology((3, 3), capacity_bps=gbps(10))
        trace = poisson_trace(topo, 15, 5_000, sizes=FixedSize(40_000), seed=42)
        plain = run_simulation(
            topo, trace, SimConfig(stack="r2c2", mtu_payload=1500, seed=1)
        )
        audited = run_simulation(
            topo, trace, SimConfig(stack="r2c2", mtu_payload=1500, seed=1, audit=True)
        )
        assert _canonical_metrics(plain) == _canonical_metrics(audited)
        assert audited.audit.ok
