"""Fluid-simulator young-flow policy behaviour."""

import pytest

from repro.sim.fluid import FluidConfig, FluidSimulator
from repro.topology import GraphTopology
from repro.workloads import FlowArrival


@pytest.fixture
def pipe():
    return GraphTopology(2, [(0, 1)], capacity_bps=10.0, latency_ns=0)


class TestYoungFlowPolicies:
    def test_local_waterfill_gives_fair_share_immediately(self, pipe):
        # Two simultaneous flows under huge rho: with local_waterfill the
        # second flow starts at its fair share (water-filled with both
        # present), not at line rate.
        sim = FluidSimulator(
            pipe,
            config=FluidConfig(
                headroom=0.0,
                recompute_interval_ns=10**12,
                initial_rate_policy="local_waterfill",
            ),
        )
        trace = [
            FlowArrival(0, 0, 1, 100, 0, protocol="rps"),
            FlowArrival(1, 0, 1, 100, 1, protocol="rps"),
        ]
        results = sim.run(trace)
        # Flow 1 arrives second and is water-filled against flow 0 (which
        # keeps its stale 10 bps): flow 1 gets the residual headroom-free
        # fair share.  Both must finish despite no epochs ever firing.
        assert set(results) == {0, 1}
        assert sim.sender_computations == 2

    def test_line_rate_policy_oversubscribes_between_epochs(self, pipe):
        sim = FluidSimulator(
            pipe,
            config=FluidConfig(
                headroom=0.0,
                recompute_interval_ns=10**12,
                initial_rate_policy="line_rate",
            ),
        )
        trace = [
            FlowArrival(0, 0, 1, 100, 0, protocol="rps"),
            FlowArrival(1, 0, 1, 100, 0, protocol="rps"),
        ]
        results = sim.run(trace)
        # Both blast at 10 bps: the fluid model lets them (queues are the
        # packet simulator's concern) and each finishes in 80 s.
        assert results[0].fct_ns == pytest.approx(80e9, rel=1e-6)
        assert results[1].fct_ns == pytest.approx(80e9, rel=1e-6)
        assert sim.sender_computations == 0

    def test_ideal_mode_ignores_policy(self, pipe):
        for policy in ("local_waterfill", "mean_allocated", "line_rate"):
            sim = FluidSimulator(
                pipe,
                config=FluidConfig(
                    headroom=0.0, recompute_interval_ns=0, initial_rate_policy=policy
                ),
            )
            results = sim.run([FlowArrival(0, 0, 1, 100, 0, protocol="rps")])
            assert results[0].average_rate_bps == pytest.approx(10.0)
