"""Tests for the fluid (flow-level) simulator."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.fluid import FluidConfig, FluidSimulator, average_rate_error
from repro.topology import GraphTopology, TorusTopology
from repro.workloads import FixedSize, FlowArrival, poisson_trace


@pytest.fixture
def pipe():
    """Two nodes, one 10 bps cable — trivially checkable arithmetic."""
    return GraphTopology(2, [(0, 1)], capacity_bps=10.0, latency_ns=0)


class TestFluidBasics:
    def test_single_flow_fct(self, pipe):
        # 100 bytes at 10 bps with no headroom: 80 seconds.
        sim = FluidSimulator(
            pipe, config=FluidConfig(headroom=0.0, recompute_interval_ns=0)
        )
        results = sim.run([FlowArrival(0, 0, 1, 100, 0, protocol="rps")])
        assert results[0].fct_ns == pytest.approx(80e9, rel=1e-6)
        assert results[0].average_rate_bps == pytest.approx(10.0)

    def test_two_flows_share_then_speed_up(self, pipe):
        # Ideal mode: two equal flows split the pipe; when one finishes the
        # other takes the whole capacity.
        sim = FluidSimulator(
            pipe, config=FluidConfig(headroom=0.0, recompute_interval_ns=0)
        )
        trace = [
            FlowArrival(0, 0, 1, 100, 0, protocol="rps"),
            FlowArrival(1, 0, 1, 50, 0, protocol="rps"),
        ]
        results = sim.run(trace)
        # Flow 1: 50 bytes at 5 bps = 80 s.  Flow 0: 50 bytes at 5, then
        # 50 bytes at 10 -> 120 s.
        assert results[1].fct_ns == pytest.approx(80e9, rel=1e-6)
        assert results[0].fct_ns == pytest.approx(120e9, rel=1e-6)

    def test_headroom_slows_flows(self, pipe):
        sim = FluidSimulator(
            pipe, config=FluidConfig(headroom=0.5, recompute_interval_ns=0)
        )
        results = sim.run([FlowArrival(0, 0, 1, 100, 0, protocol="rps")])
        assert results[0].average_rate_bps == pytest.approx(5.0)

    def test_batched_mode_initial_rate(self, pipe):
        # With a huge interval the flow runs entirely at the initial rate
        # (line rate here: nothing was allocated before).
        sim = FluidSimulator(
            pipe,
            config=FluidConfig(
                headroom=0.0,
                recompute_interval_ns=10**12,
                initial_rate_policy="line_rate",
            ),
        )
        results = sim.run([FlowArrival(0, 0, 1, 100, 0, protocol="rps")])
        assert results[0].average_rate_bps == pytest.approx(10.0)

    def test_empty_trace(self, pipe):
        assert FluidSimulator(pipe).run([]) == {}

    def test_recomputation_counter(self, pipe):
        sim = FluidSimulator(
            pipe, config=FluidConfig(headroom=0.0, recompute_interval_ns=0)
        )
        sim.run(
            [
                FlowArrival(0, 0, 1, 100, 0, protocol="rps"),
                FlowArrival(1, 0, 1, 100, 10, protocol="rps"),
            ]
        )
        assert sim.recomputations >= 3  # two arrivals + a departure

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            FluidConfig(recompute_interval_ns=-1)
        with pytest.raises(SimulationError):
            FluidConfig(initial_rate_policy="bogus")


class TestRateError:
    def test_zero_interval_has_zero_error(self, torus2d):
        trace = poisson_trace(torus2d, 40, 5_000, sizes=FixedSize(100_000), seed=6)
        errors = average_rate_error(torus2d, trace, rho_ns=0)
        assert max(errors) == pytest.approx(0.0, abs=1e-9)

    def test_error_grows_with_interval(self, torus3d):
        # The Figure 15 trend: larger rho, larger deviation from ideal.
        trace = poisson_trace(torus3d, 250, 1_000, seed=8)
        from repro.analysis import median

        small = median(average_rate_error(torus3d, trace, rho_ns=10_000))
        large = median(average_rate_error(torus3d, trace, rho_ns=1_000_000))
        assert small <= large

    def test_errors_are_per_flow(self, torus2d):
        trace = poisson_trace(torus2d, 30, 5_000, seed=9)
        errors = average_rate_error(torus2d, trace, rho_ns=500_000)
        assert len(errors) == 30
        assert all(e >= 0 for e in errors)
