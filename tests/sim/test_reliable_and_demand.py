"""Simulator tests for the reliability transport and host-limited flows."""

import pytest

from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.workloads import FixedSize, FlowArrival, poisson_trace


class TestReliableStack:
    def test_lossless_equivalence(self, torus2d):
        trace = poisson_trace(torus2d, 40, 15_000, sizes=FixedSize(60_000), seed=2)
        plain = run_simulation(torus2d, trace, SimConfig(stack="r2c2", seed=2))
        reliable = run_simulation(
            torus2d, trace, SimConfig(stack="r2c2", reliable=True, seed=2)
        )
        assert plain.completion_rate() == 1.0
        assert reliable.completion_rate() == 1.0
        # Without loss, the reliability layer costs only ACK bandwidth.
        assert reliable.ack_bytes > 0
        assert reliable.fct_percentile_us(99) < plain.fct_percentile_us(99) * 2.5

    def test_recovers_all_bytes_under_loss(self, torus2d):
        trace = poisson_trace(torus2d, 50, 15_000, sizes=FixedSize(60_000), seed=4)
        metrics = run_simulation(
            torus2d,
            trace,
            SimConfig(stack="r2c2", reliable=True, loss_rate=0.03, seed=4),
        )
        assert metrics.wire_losses > 0
        assert metrics.completion_rate() == 1.0
        for flow in metrics.flows:
            assert flow.bytes_received == flow.size_bytes

    def test_unreliable_stack_loses_flows_under_loss(self, torus2d):
        trace = poisson_trace(torus2d, 50, 15_000, sizes=FixedSize(60_000), seed=4)
        metrics = run_simulation(
            torus2d,
            trace,
            SimConfig(stack="r2c2", reliable=False, loss_rate=0.03, seed=4),
        )
        assert metrics.completion_rate() < 1.0  # the contrast that motivates §6

    def test_retransmissions_counted(self, torus2d):
        trace = poisson_trace(torus2d, 30, 15_000, sizes=FixedSize(60_000), seed=5)
        metrics = run_simulation(
            torus2d,
            trace,
            SimConfig(stack="r2c2", reliable=True, loss_rate=0.05, seed=5),
        )
        assert metrics.completion_rate() == 1.0
        # bytes on the wire exceed unique payload: retransmissions happened.
        unique_payload = sum(f.size_bytes for f in metrics.flows)
        assert metrics.data_bytes_on_wire > unique_payload

    def test_loss_rate_validation(self, torus2d):
        from repro.errors import SimulationError
        from repro.sim import EventLoop, RackNetwork

        with pytest.raises(SimulationError):
            RackNetwork(EventLoop(), torus2d, loss_rate=1.5)


class TestHostLimitedFlows:
    def test_app_rate_caps_throughput(self, torus2d):
        trace = [FlowArrival(0, 0, 10, 1_000_000, 0, app_rate_bps=2e9)]
        metrics = run_simulation(torus2d, trace, SimConfig(stack="r2c2"))
        flow = metrics.completed_flows()[0]
        assert flow.average_throughput_bps() == pytest.approx(2e9, rel=0.1)

    def test_demand_updates_free_capacity(self, torus2d):
        # A host-limited and a network-limited flow share node 1's links;
        # after demand estimation kicks in, the network-limited flow gets
        # far more than a naive 50/50 split.
        trace = [
            FlowArrival(0, 0, 1, 3_000_000, 0, app_rate_bps=1e9),
            FlowArrival(1, 4, 1, 3_000_000, 0),
        ]
        metrics = run_simulation(torus2d, trace, SimConfig(stack="r2c2", seed=1))
        tputs = {
            f.flow_id: f.average_throughput_bps() for f in metrics.completed_flows()
        }
        assert tputs[0] == pytest.approx(1e9, rel=0.15)
        assert tputs[1] > 2.5 * tputs[0]

    def test_demand_broadcasts_emitted(self, torus2d):
        trace = [
            FlowArrival(0, 0, 1, 3_000_000, 0, app_rate_bps=1e9),
            FlowArrival(1, 4, 1, 3_000_000, 0),
        ]
        metrics = run_simulation(torus2d, trace, SimConfig(stack="r2c2", seed=1))
        # start + finish per flow = 4 x 15 deliveries; anything beyond that
        # is demand-update traffic.
        base = 4 * (torus2d.n_nodes - 1)
        assert metrics.broadcast_packets > base

    def test_produced_bytes_model(self):
        flow_arrival = FlowArrival(0, 0, 1, 1000, 100, app_rate_bps=8e9)
        from repro.sim.flows import SimFlow

        flow = SimFlow(flow_arrival)
        assert flow.produced_bytes(100) == 0
        assert flow.produced_bytes(600) == 500  # 8 Gbps = 1 B/ns
        assert flow.produced_bytes(10_000) == 1000  # capped at size

    def test_network_limited_produces_everything(self):
        from repro.sim.flows import SimFlow

        flow = SimFlow(FlowArrival(0, 0, 1, 1000, 100))
        assert flow.produced_bytes(0) == 1000
