"""Behavioural tests for the three host stacks in the packet simulator."""

import pytest

from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.types import gbps, usec
from repro.workloads import FixedSize, poisson_trace


def small_trace(topology, n_flows=40, tau_ns=20_000, size=200_000, seed=1):
    return poisson_trace(
        topology, n_flows, tau_ns, sizes=FixedSize(size), seed=seed
    )


class TestR2C2Stack:
    def test_all_flows_complete(self, torus2d):
        metrics = run_simulation(torus2d, small_trace(torus2d), SimConfig(stack="r2c2"))
        assert metrics.completion_rate() == 1.0
        assert metrics.drops == 0

    def test_bytes_conserved(self, torus2d):
        trace = small_trace(torus2d, n_flows=20)
        metrics = run_simulation(torus2d, trace, SimConfig(stack="r2c2"))
        for flow in metrics.flows:
            assert flow.bytes_received == flow.size_bytes
            assert flow.bytes_sent == flow.size_bytes

    def test_broadcast_traffic_present(self, torus2d):
        trace = small_trace(torus2d, n_flows=20)
        metrics = run_simulation(torus2d, trace, SimConfig(stack="r2c2"))
        # Two events per flow, one 16-byte packet per tree edge (15 on a
        # 16-node rack).
        assert metrics.broadcast_packets == 2 * 20 * 15
        assert metrics.broadcast_bytes == metrics.broadcast_packets * 16

    def test_rate_limiting_caps_queues(self, torus2d):
        # After the first epoch, senders respect allocations: queues stay
        # far below a line-rate-blast scenario.
        trace = small_trace(torus2d, n_flows=60, tau_ns=30_000, size=500_000)
        metrics = run_simulation(
            torus2d, trace, SimConfig(stack="r2c2", recompute_interval_ns=usec(100))
        )
        assert metrics.queue_occupancy_percentile_kb(99) < 200

    def test_headroom_zero_allowed(self, torus2d):
        metrics = run_simulation(
            torus2d, small_trace(torus2d, 10), SimConfig(stack="r2c2", headroom=0.0)
        )
        assert metrics.completion_rate() == 1.0

    def test_reordering_measured(self, torus2d):
        metrics = run_simulation(torus2d, small_trace(torus2d, 20), SimConfig())
        # Multi-path spraying must cause at least some reordering.
        assert any(f.max_reorder_buffer > 0 for f in metrics.completed_flows())

    def test_strawman_mode(self, torus2d):
        # exempt_young_flows=False recomputes on every event.
        metrics = run_simulation(
            torus2d,
            small_trace(torus2d, 10),
            SimConfig(stack="r2c2", exempt_young_flows=False),
        )
        assert metrics.completion_rate() == 1.0


class TestTcpStack:
    def test_all_flows_complete(self, torus2d):
        metrics = run_simulation(torus2d, small_trace(torus2d), SimConfig(stack="tcp"))
        assert metrics.completion_rate() == 1.0

    def test_ack_traffic_counted(self, torus2d):
        metrics = run_simulation(torus2d, small_trace(torus2d, 10), SimConfig(stack="tcp"))
        assert metrics.ack_bytes > 0

    def test_recovers_from_drops(self):
        # A tiny queue forces drops; TCP must still complete all flows.
        topo = TorusTopology((3, 3), capacity_bps=gbps(1))
        trace = small_trace(topo, n_flows=12, tau_ns=5_000, size=300_000, seed=3)
        metrics = run_simulation(
            topo, trace, SimConfig(stack="tcp", tcp_queue_limit_bytes=8_000)
        )
        assert metrics.drops > 0
        assert metrics.completion_rate() == 1.0

    def test_single_path_no_reordering_buffers(self, torus2d):
        metrics = run_simulation(torus2d, small_trace(torus2d, 15), SimConfig(stack="tcp"))
        # Without drops, single-path TCP delivers in order.
        if metrics.drops == 0:
            assert all(f.max_reorder_buffer == 0 for f in metrics.completed_flows())


class TestPfqStack:
    def test_all_flows_complete(self, torus2d):
        metrics = run_simulation(torus2d, small_trace(torus2d), SimConfig(stack="pfq"))
        assert metrics.completion_rate() == 1.0
        assert metrics.drops == 0

    def test_backpressure_bounds_queues(self, torus2d):
        # Back-pressure keeps per-port queues to a few packets per flow.
        trace = small_trace(torus2d, n_flows=40, tau_ns=10_000, size=400_000)
        metrics = run_simulation(torus2d, trace, SimConfig(stack="pfq"))
        assert metrics.queue_occupancy_percentile_kb(99) < 150

    def test_two_flow_fairness(self):
        # Two long flows sharing one bottleneck link split it evenly.
        from repro.workloads import FlowArrival

        topo = TorusTopology((3, 3), capacity_bps=gbps(1))
        trace = [
            FlowArrival(0, 0, 1, 400_000, 0),
            FlowArrival(1, 3, 1, 400_000, 0),
        ]
        metrics = run_simulation(topo, trace, SimConfig(stack="pfq"))
        rates = sorted(
            f.average_throughput_bps() for f in metrics.completed_flows()
        )
        assert rates[0] / rates[1] > 0.55


class TestStackOrdering:
    """The headline qualitative result: PFQ <= R2C2 << TCP for tail FCT."""

    def test_fct_ordering(self, torus2d):
        trace = poisson_trace(
            torus2d, 150, 5_000, sizes=FixedSize(60_000), seed=42
        )
        results = {}
        for stack in ("r2c2", "tcp", "pfq"):
            metrics = run_simulation(torus2d, trace, SimConfig(stack=stack, seed=2))
            assert metrics.completion_rate() == 1.0
            results[stack] = metrics.fct_percentile_us(99)
        assert results["r2c2"] < results["tcp"]
        assert results["pfq"] <= results["r2c2"] * 1.5
