"""Tests for the metrics collector and the latency reservoir."""

import pytest

from repro.errors import SimulationError
from repro.sim import SimConfig, run_simulation
from repro.sim.metrics import LatencyReservoir, SimMetrics
from repro.workloads import FixedSize, poisson_trace


class TestLatencyReservoir:
    def test_small_counts_exact(self):
        res = LatencyReservoir(capacity=100)
        for v in (1000, 2000, 3000):
            res.record(v)
        assert res.count == 3
        assert res.mean_ns == 2000
        assert res.max_ns == 3000
        assert res.percentile_us(50) == pytest.approx(2.0)

    def test_reservoir_bounds_memory(self):
        res = LatencyReservoir(capacity=10, seed=1)
        for v in range(10_000):
            res.record(v)
        assert res.count == 10_000
        assert len(res._samples) == 10

    def test_reservoir_estimates_are_sane(self):
        res = LatencyReservoir(capacity=500, seed=2)
        for v in range(10_000):
            res.record(v)
        # Median of 0..9999 is ~5000 ns = 5 us.
        assert res.percentile_us(50) == pytest.approx(5.0, rel=0.25)

    def test_empty_percentile_is_safe(self):
        # Empty-safe: telemetry exports must not raise on a dry run.
        reservoir = LatencyReservoir()
        assert reservoir.percentile_us(50) == 0.0
        assert reservoir.to_dict() == {
            "count": 0, "mean_ns": 0.0, "max_ns": 0, "p50_us": 0.0, "p99_us": 0.0,
        }

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            LatencyReservoir(capacity=0)


class TestMetricsFromRuns:
    @pytest.fixture(scope="class")
    def run(self, request):
        from repro.topology import TorusTopology

        topo = TorusTopology((4, 4))
        trace = poisson_trace(topo, 50, 10_000, sizes=FixedSize(50_000), seed=8)
        return run_simulation(topo, trace, SimConfig(stack="r2c2", seed=8))

    def test_latencies_recorded(self, run):
        assert run.packet_latency.count > 0
        # Latency is at least serialization + propagation of one hop.
        assert run.packet_latency.percentile_us(50) > 1.0

    def test_summary_keys(self, run):
        summary = run.summary()
        for key in ("flows", "completed", "drops", "broadcast_bytes"):
            assert key in summary

    def test_broadcast_fraction_bounded(self, run):
        assert 0.0 < run.broadcast_capacity_fraction() < 0.5

    def test_completion_rate(self, run):
        assert run.completion_rate() == 1.0

    def test_short_long_partition(self, run):
        # 50 KB flows are all "short" by the paper's 100 KB threshold.
        assert len(run.short_flows()) == len(run.completed_flows())
        assert run.long_flows() == []

    def test_empty_metrics_behaviour(self):
        metrics = SimMetrics()
        assert metrics.completion_rate() == 1.0
        assert metrics.broadcast_capacity_fraction() == 0.0
        with pytest.raises(SimulationError):
            metrics.fct_percentile_us(99)
        with pytest.raises(SimulationError):
            metrics.queue_occupancy_percentile_kb(99)
        with pytest.raises(SimulationError):
            metrics.reorder_buffer_percentile(95)
