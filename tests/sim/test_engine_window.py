"""Event-loop windowing primitives (:meth:`next_event_time`,
:meth:`run_window`) and deterministic same-instant ordering — the engine
surface the sharded coordinator is built on.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventLoop


def test_next_event_time_peeks_without_side_effects():
    loop = EventLoop()
    assert loop.next_event_time() is None
    loop.schedule_at(40, lambda: None)
    loop.schedule_at(10, lambda: None)
    assert loop.next_event_time() == 10
    assert loop.next_event_time() == 10  # pure peek, repeatable
    assert loop.now == 0
    assert loop.pending() == 2


def test_run_window_executes_inclusive_and_parks_clock():
    loop = EventLoop()
    fired = []
    for t in (5, 10, 11, 30):
        loop.schedule_at(t, lambda t=t: fired.append(t))
    processed = loop.run_window(10)
    assert fired == [5, 10]
    assert processed == 2
    assert loop.now == 10  # parked at the edge, not at the last event
    assert loop.next_event_time() == 11


def test_run_window_parks_clock_when_queue_drains_early():
    loop = EventLoop()
    loop.schedule_at(3, lambda: None)
    loop.run_window(100)
    assert loop.now == 100
    assert loop.next_event_time() is None
    # An empty window on an empty queue still advances the clock.
    loop.run_window(250)
    assert loop.now == 250


def test_run_window_rejects_past_and_non_integer_edges():
    loop = EventLoop()
    loop.schedule_at(5, lambda: None)
    loop.run_window(20)
    with pytest.raises(SimulationError):
        loop.run_window(19)
    with pytest.raises(SimulationError):
        loop.run_window(20.5)
    loop.run_window(20)  # the current instant is a valid (empty) window


def test_all_time_entry_points_reject_bad_times_uniformly():
    """schedule / schedule_at / run / run_until / run_window share one
    validator: negative, past, NaN, infinite and fractional times all
    raise SimulationError rather than corrupting heap order."""
    loop = EventLoop()
    loop.schedule_at(2, lambda: None)
    loop.run_window(4)  # clock now at 4
    for bad_call in (
        lambda: loop.schedule(-1, lambda: None),
        lambda: loop.schedule(float("nan"), lambda: None),
        lambda: loop.schedule(1.5, lambda: None),
        lambda: loop.schedule_at(3, lambda: None),  # behind the clock
        lambda: loop.schedule_at(float("inf"), lambda: None),
        lambda: loop.schedule_at("5", lambda: None),
        lambda: loop.run(until_ns=3),
        lambda: loop.run(until_ns=float("nan")),
        lambda: loop.run_until(3),
        lambda: loop.run_until(None),
        lambda: loop.run_until(4.25),
        lambda: loop.run_window(3),
        lambda: loop.run_window(float("-inf")),
    ):
        with pytest.raises(SimulationError):
            bad_call()
    assert loop.now == 4  # no failed call moved the clock
    assert loop.pending() == 0


def test_exact_integral_floats_are_accepted():
    loop = EventLoop()
    fired = []
    loop.schedule(10.0, lambda: fired.append("a"))
    loop.run_until(20.0)
    assert fired == ["a"]
    assert loop.now == 20


def test_windowed_execution_equals_free_run():
    """Chopping a run into arbitrary windows must not change the outcome."""

    def build(loop, order):
        def ping(t, n):
            order.append((t, n))
            if n < 3:
                loop.schedule(7, lambda: ping(loop.now, n + 1))

        for i in range(4):
            loop.schedule_at(3 * i, lambda i=i: ping(3 * i, 0))

    free_loop, free_order = EventLoop(), []
    build(free_loop, free_order)
    free_loop.run()

    win_loop, win_order = EventLoop(), []
    build(win_loop, win_order)
    for edge in (1, 2, 5, 13, 14, 40):
        win_loop.run_window(edge)
    assert win_loop.next_event_time() is None
    assert win_order == free_order


def test_same_instant_priority_orders_before_sequence():
    """Heap key is (time, prio, seq): priority dominates insertion order."""
    loop = EventLoop()
    fired = []
    loop.schedule_at(10, lambda: fired.append("late-prio"), prio=9)
    loop.schedule_at(10, lambda: fired.append("zero-a"))
    loop.schedule_at(10, lambda: fired.append("early-prio"), prio=2)
    loop.schedule_at(10, lambda: fired.append("zero-b"))
    loop.run()
    assert fired == ["zero-a", "zero-b", "early-prio", "late-prio"]


def test_same_priority_keeps_fifo_order():
    loop = EventLoop()
    fired = []
    for tag in ("a", "b", "c"):
        loop.schedule_at(5, lambda tag=tag: fired.append(tag), prio=4)
    loop.run()
    assert fired == ["a", "b", "c"]


def test_priority_is_scoped_to_one_instant():
    """A high-prio event at an earlier time still runs first."""
    loop = EventLoop()
    fired = []
    loop.schedule_at(10, lambda: fired.append("t10-p0"))
    loop.schedule_at(5, lambda: fired.append("t5-p99"), prio=99)
    loop.run()
    assert fired == ["t5-p99", "t10-p0"]
