"""The §3.2 broadcast drop/retransmit path, exercised in the simulator.

With finite port queues and a bursty workload, broadcast packets get
dropped at congested intermediate nodes; the dropping node sends a
notification to the source, which retransmits on another tree.  Per-node
control tables must still converge on the events that matter.
"""

import pytest

from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.types import gbps
from repro.workloads import FixedSize, poisson_trace


class TestBroadcastDropRecovery:
    def test_unbounded_queues_never_drop(self, torus2d):
        trace = poisson_trace(torus2d, 40, 10_000, sizes=FixedSize(60_000), seed=5)
        metrics = run_simulation(torus2d, trace, SimConfig(stack="r2c2", seed=5))
        assert metrics.drops == 0

    def test_drops_trigger_retransmission(self):
        # A slow fabric with tiny queues and a burst of simultaneous flows:
        # broadcasts compete with data and some are dropped.
        topo = TorusTopology((3, 3), capacity_bps=gbps(1))
        trace = poisson_trace(topo, 60, 500, sizes=FixedSize(30_000), seed=7)
        metrics = run_simulation(
            topo,
            trace,
            SimConfig(stack="r2c2", queue_limit_bytes=4_000, seed=7),
        )
        assert metrics.drops > 0  # something was dropped somewhere
        # Completion must survive data-packet drops?  No: the plain stack
        # has no data retransmission.  The invariant under test is that the
        # run stays sane and drop notifications flowed (they are data-plane
        # packets and show up in total bytes).
        assert metrics.total_bytes_on_wire > 0

    def test_retransmission_counter_exposed(self):
        # Drive the stack API directly to assert the §3.2 machinery.
        from repro.broadcast import BroadcastFib
        from repro.congestion.controller import RateController
        from repro.sim import EventLoop, RackNetwork, SimPacket
        from repro.sim.flows import SimFlow
        from repro.sim.packets import KIND_DROP_NOTE
        from repro.sim.stacks.r2c2 import R2C2Stack, SharedControlPlane
        from repro.workloads import FlowArrival

        topo = TorusTopology((3, 3))
        loop = EventLoop()
        fib = BroadcastFib(topo, n_trees=2)
        network = RackNetwork(loop, topo, fib=fib)
        controller = RateController(topo, 0)
        control = SharedControlPlane(loop, network, controller)
        flows = {}
        stacks = [
            R2C2Stack(n, loop, network, control, flows, n_trees=2)
            for n in topo.nodes()
        ]
        for n in topo.nodes():
            network.stack_at[n] = stacks[n]
        flow = SimFlow(FlowArrival(0, 0, 4, 3_000, 0))
        flows[0] = flow
        stacks[0].start_flow(flow)
        loop.run()
        assert stacks[0].broadcast_retransmissions == 0

        # Deliver a forged drop notification for the start broadcast
        # (seq 0): the source must retransmit it.
        before = loop.events_processed
        note = SimPacket(
            kind=KIND_DROP_NOTE,
            flow_id=0,
            src=5,
            dst=0,
            seq=0,
            size_bytes=10,
            path=(5, 0),
        )
        stacks[0].deliver(note)
        assert stacks[0].broadcast_retransmissions == 1
        loop.run()
        assert loop.events_processed > before  # the re-broadcast traveled

    def test_unknown_seq_ignored(self):
        from repro.broadcast import BroadcastFib
        from repro.congestion.controller import RateController
        from repro.sim import EventLoop, RackNetwork, SimPacket
        from repro.sim.packets import KIND_DROP_NOTE
        from repro.sim.stacks.r2c2 import R2C2Stack, SharedControlPlane

        topo = TorusTopology((3, 3))
        loop = EventLoop()
        network = RackNetwork(loop, topo, fib=BroadcastFib(topo))
        control = SharedControlPlane(loop, network, RateController(topo, 0))
        stack = R2C2Stack(0, loop, network, control, {})
        stack.deliver(
            SimPacket(KIND_DROP_NOTE, 0, 5, 0, seq=999, size_bytes=10, path=(5, 0))
        )
        assert stack.broadcast_retransmissions == 0
