"""The §3.2 broadcast drop/retransmit path, exercised in the simulator.

With finite port queues and a bursty workload, broadcast packets get
dropped at congested intermediate nodes; the dropping node sends a
notification to the source, which retransmits on another tree.  Per-node
control tables must still converge on the events that matter.
"""

import pytest

from repro.sim import SimConfig, run_simulation
from repro.topology import TorusTopology
from repro.types import gbps
from repro.workloads import FixedSize, poisson_trace


class TestBroadcastDropRecovery:
    def test_unbounded_queues_never_drop(self, torus2d):
        trace = poisson_trace(torus2d, 40, 10_000, sizes=FixedSize(60_000), seed=5)
        metrics = run_simulation(torus2d, trace, SimConfig(stack="r2c2", seed=5))
        assert metrics.drops == 0

    def test_drops_trigger_retransmission(self):
        # A slow fabric with tiny queues and a burst of simultaneous flows:
        # broadcasts compete with data and some are dropped.
        topo = TorusTopology((3, 3), capacity_bps=gbps(1))
        trace = poisson_trace(topo, 60, 500, sizes=FixedSize(30_000), seed=7)
        metrics = run_simulation(
            topo,
            trace,
            SimConfig(stack="r2c2", queue_limit_bytes=4_000, seed=7),
        )
        assert metrics.drops > 0  # something was dropped somewhere
        # Completion must survive data-packet drops?  No: the plain stack
        # has no data retransmission.  The invariant under test is that the
        # run stays sane and drop notifications flowed (they are data-plane
        # packets and show up in total bytes).
        assert metrics.total_bytes_on_wire > 0

    def test_retransmission_counter_exposed(self):
        # Drive the stack API directly to assert the §3.2 machinery.
        from repro.broadcast import BroadcastFib
        from repro.congestion.controller import RateController
        from repro.sim import EventLoop, RackNetwork, SimPacket
        from repro.sim.flows import SimFlow
        from repro.sim.packets import KIND_DROP_NOTE
        from repro.sim.stacks.r2c2 import R2C2Stack, SharedControlPlane
        from repro.workloads import FlowArrival

        topo = TorusTopology((3, 3))
        loop = EventLoop()
        fib = BroadcastFib(topo, n_trees=2)
        network = RackNetwork(loop, topo, fib=fib)
        controller = RateController(topo, 0)
        control = SharedControlPlane(loop, network, controller)
        flows = {}
        stacks = [
            R2C2Stack(n, loop, network, control, flows, n_trees=2)
            for n in topo.nodes()
        ]
        for n in topo.nodes():
            network.stack_at[n] = stacks[n]
        flow = SimFlow(FlowArrival(0, 0, 4, 3_000, 0))
        flows[0] = flow
        stacks[0].start_flow(flow)
        loop.run()
        assert stacks[0].broadcast_retransmissions == 0

        # Deliver a forged drop notification for the start broadcast
        # (seq 0): the source must retransmit it.
        before = loop.events_processed
        note = SimPacket(
            kind=KIND_DROP_NOTE,
            flow_id=0,
            src=5,
            dst=0,
            seq=0,
            size_bytes=10,
            path=(5, 0),
        )
        stacks[0].deliver(note)
        assert stacks[0].broadcast_retransmissions == 1
        loop.run()
        assert loop.events_processed > before  # the re-broadcast traveled

    def test_unknown_seq_ignored(self):
        from repro.broadcast import BroadcastFib
        from repro.congestion.controller import RateController
        from repro.sim import EventLoop, RackNetwork, SimPacket
        from repro.sim.packets import KIND_DROP_NOTE
        from repro.sim.stacks.r2c2 import R2C2Stack, SharedControlPlane

        topo = TorusTopology((3, 3))
        loop = EventLoop()
        network = RackNetwork(loop, topo, fib=BroadcastFib(topo))
        control = SharedControlPlane(loop, network, RateController(topo, 0))
        stack = R2C2Stack(0, loop, network, control, {})
        stack.deliver(
            SimPacket(KIND_DROP_NOTE, 0, 5, 0, seq=999, size_bytes=10, path=(5, 0))
        )
        assert stack.broadcast_retransmissions == 0


@pytest.mark.validation
class TestLinkFailureReannounce:
    """§3.2: after topology discovery reports a failure, every node
    re-announces its ongoing flows so rebuilt tables reconverge."""

    def _build(self, topo, seed=0):
        from repro.broadcast import BroadcastFib
        from repro.congestion.controller import ControllerConfig
        from repro.congestion.linkweights import WeightProvider
        from repro.sim import EventLoop, RackNetwork
        from repro.sim.stacks.r2c2 import PerNodeControlPlane, R2C2Stack

        loop = EventLoop()
        fib = BroadcastFib(topo, n_trees=2, seed=seed)
        network = RackNetwork(loop, topo, fib=fib)
        control = PerNodeControlPlane(
            loop, network, topo, WeightProvider(topo), ControllerConfig()
        )
        flows = {}
        stacks = [
            R2C2Stack(n, loop, network, control, flows, n_trees=2, seed=seed)
            for n in topo.nodes()
        ]
        for n in topo.nodes():
            network.stack_at[n] = stacks[n]
        return loop, network, control, stacks, flows

    def test_reannounce_restores_rebuilt_tables(self):
        from repro.sim.flows import SimFlow
        from repro.validation import FaultInjector
        from repro.workloads import FlowArrival

        topo = TorusTopology((3, 3))
        loop, network, control, stacks, flows = self._build(topo)
        # Two long (ongoing) flows from different sources.
        for flow_id, (src, dst) in enumerate([(0, 4), (2, 7)]):
            flow = SimFlow(FlowArrival(flow_id, src, dst, 10_000_000, 0))
            flows[flow_id] = flow
            stacks[src].start_flow(flow)
        loop.run_until(50_000)
        assert all(0 in c.table and 1 in c.table for c in control.controllers)

        # A link fails; discovery reports it and tables are rebuilt from
        # scratch on every node (the paper's worst-case recovery).
        injector = FaultInjector(seed=1)
        degraded, failed = injector.fail_links(topo, 2)
        assert injector.recovery.failed_links == set(failed)
        for controller in control.controllers:
            for flow_id in [f.flow_id for f in controller.table.snapshot()]:
                controller.table.remove(flow_id)
        assert all(len(c.table) == 0 for c in control.controllers)

        # Every node re-announces its ongoing flows; the re-broadcasts
        # travel as real packets and rebuild every table.
        reannounced = sum(stack.reannounce_ongoing() for stack in stacks)
        assert reannounced == 2
        loop.run_until(loop.now + 100_000)
        assert all(0 in c.table and 1 in c.table for c in control.controllers)

    def test_reannounce_skips_finished_flows(self):
        from repro.sim.flows import SimFlow
        from repro.workloads import FlowArrival

        topo = TorusTopology((3, 3))
        loop, network, control, stacks, flows = self._build(topo)
        flow = SimFlow(FlowArrival(0, 0, 4, 3_000, 0))  # tiny: finishes fast
        flows[0] = flow
        stacks[0].start_flow(flow)
        loop.run()
        assert flow.completed
        assert stacks[0].reannounce_ongoing() == 0

    def test_broadcasts_cover_degraded_fabric(self):
        """Trees rebuilt on the failure view still reach every node."""
        from repro.broadcast import BroadcastFib
        from repro.sim import EventLoop, KIND_BROADCAST, RackNetwork, SimPacket
        from repro.validation import FaultInjector

        topo = TorusTopology((3, 3))
        degraded, _ = FaultInjector(seed=4).fail_links(topo, 3)
        assert degraded.is_connected()
        loop = EventLoop()
        network = RackNetwork(loop, degraded, fib=BroadcastFib(degraded, n_trees=2))

        class Sink:
            def __init__(self):
                self.received = []

            def deliver(self, packet):
                self.received.append(packet)

        sinks = [Sink() for _ in degraded.nodes()]
        for node in degraded.nodes():
            network.stack_at[node] = sinks[node]
        network.inject(0, SimPacket(KIND_BROADCAST, 0, 0, 0, 0, 16, tree_id=1))
        loop.run()
        assert all(len(s.received) == 1 for s in sinks)
