"""Tests for the routing-selection problem, GA and baseline heuristics."""

import pytest

from repro.congestion import FlowSpec
from repro.errors import SelectionError
from repro.selection import (
    AggregateThroughput,
    AnnealingConfig,
    AnnealingSelector,
    GeneticConfig,
    GeneticSelector,
    HillClimbConfig,
    HillClimbSelector,
    LogLinearConfig,
    LogLinearSelector,
    SelectionProblem,
    TailThroughput,
    TenantTailThroughput,
    random_baseline,
    uniform_baseline,
)
from repro.workloads import permutation_load_trace


def make_problem(topology, load=0.5, seed=1, protocols=("rps", "vlb")):
    trace = permutation_load_trace(topology, load, seed=seed)
    flows = [FlowSpec(a.flow_id, a.src, a.dst, protocol="rps") for a in trace]
    return SelectionProblem(topology, flows, protocols=protocols)


class TestProblem:
    def test_fitness_memoized(self, torus2d):
        problem = make_problem(torus2d)
        assignment = problem.current_assignment()
        problem.fitness(assignment)
        problem.fitness(assignment)
        assert problem.evaluations == 1

    def test_current_assignment_matches_flows(self, torus2d):
        problem = make_problem(torus2d)
        assert problem.current_assignment() == (0,) * problem.n_flows

    def test_assignment_length_checked(self, torus2d):
        problem = make_problem(torus2d)
        with pytest.raises(SelectionError):
            problem.fitness((0,))

    def test_protocol_names(self, torus2d):
        problem = make_problem(torus2d)
        names = problem.assignment_as_protocols((0, 1) * (problem.n_flows // 2))
        assert set(names) == {"rps", "vlb"}

    def test_empty_flows_rejected(self, torus2d):
        with pytest.raises(SelectionError):
            SelectionProblem(torus2d, [])


class TestBaselines:
    def test_uniform(self, torus2d):
        problem = make_problem(torus2d)
        result = uniform_baseline(problem, "vlb")
        assert set(result.assignment) == {1}
        assert result.utility > 0

    def test_uniform_unknown_protocol(self, torus2d):
        with pytest.raises(SelectionError):
            uniform_baseline(make_problem(torus2d), "dor")

    def test_random_deterministic_by_seed(self, torus2d):
        problem = make_problem(torus2d)
        a = random_baseline(problem, seed=3)
        b = random_baseline(problem, seed=3)
        assert a.assignment == b.assignment


class TestGenetic:
    def test_never_worse_than_uniform_baselines(self, torus3d):
        problem = make_problem(torus3d, load=0.25)
        ga = GeneticSelector(GeneticConfig(max_generations=8, patience=3, seed=1))
        result = ga.search(problem)
        rps = uniform_baseline(problem, "rps").utility
        vlb = uniform_baseline(problem, "vlb").utility
        assert result.utility >= max(rps, vlb) - 1e-6

    def test_beats_baselines_at_low_load(self, torus3d):
        # Figure 18's core claim: mixing protocols beats any single one.
        problem = make_problem(torus3d, load=0.125)
        result = GeneticSelector(
            GeneticConfig(max_generations=15, patience=5, seed=2)
        ).search(problem)
        best_uniform = max(
            uniform_baseline(problem, p).utility for p in ("rps", "vlb")
        )
        assert result.utility > best_uniform * 1.02

    def test_history_monotone(self, torus2d):
        problem = make_problem(torus2d)
        result = GeneticSelector(
            GeneticConfig(max_generations=6, patience=6, seed=0)
        ).search(problem)
        assert result.history == sorted(result.history)

    def test_config_validation(self):
        with pytest.raises(SelectionError):
            GeneticConfig(population_size=1)
        with pytest.raises(SelectionError):
            GeneticConfig(mutation_probability=2.0)
        with pytest.raises(SelectionError):
            GeneticConfig(elite_fraction=0.0)


class TestOtherHeuristics:
    def test_hill_climb_improves_or_equals(self, torus2d):
        problem = make_problem(torus2d)
        start = problem.fitness(problem.current_assignment())
        result = HillClimbSelector(HillClimbConfig(max_steps=200, restarts=1)).search(problem)
        assert result.utility >= start

    def test_annealing_runs(self, torus2d):
        problem = make_problem(torus2d)
        result = AnnealingSelector(
            AnnealingConfig(initial_temperature=0.5, cooling=0.8, steps_per_temperature=5)
        ).search(problem)
        assert result.utility > 0
        assert result.heuristic == "annealing"

    def test_loglinear_runs(self, torus2d):
        problem = make_problem(torus2d)
        result = LogLinearSelector(LogLinearConfig(rounds=40)).search(problem)
        assert result.utility > 0
        assert len(result.history) == 41

    def test_config_validation(self):
        with pytest.raises(SelectionError):
            HillClimbConfig(max_steps=0)
        with pytest.raises(SelectionError):
            AnnealingConfig(cooling=1.5)
        with pytest.raises(SelectionError):
            LogLinearConfig(rounds=0)


class TestUtilities:
    def _allocation(self, rates):
        import numpy as np

        from repro.congestion.waterfill import RateAllocation

        return RateAllocation(
            rates_bps=rates,
            bottleneck_link={},
            link_load_bps=np.zeros(1),
            link_capacity_bps=np.ones(1),
        )

    def test_aggregate(self):
        alloc = self._allocation({1: 2.0, 2: 3.0})
        assert AggregateThroughput().evaluate(alloc) == 5.0

    def test_tail_min(self):
        alloc = self._allocation({1: 2.0, 2: 3.0})
        assert TailThroughput().evaluate(alloc) == 2.0

    def test_tail_percentile(self):
        alloc = self._allocation({i: float(i) for i in range(1, 101)})
        assert TailThroughput(percentile=50).evaluate(alloc) == pytest.approx(50.5)

    def test_tenant_tail(self):
        metric = TenantTailThroughput({1: "a", 2: "a", 3: "b"})
        alloc = self._allocation({1: 1.0, 2: 1.0, 3: 1.5})
        assert metric.evaluate(alloc) == 1.5

    def test_tail_validation(self):
        with pytest.raises(SelectionError):
            TailThroughput(percentile=150)
