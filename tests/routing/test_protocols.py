"""Behavioural tests for each routing protocol."""

import random

import pytest

from repro.errors import RoutingError
from repro.routing import (
    DestinationTagRouting,
    EcmpSinglePath,
    RandomPacketSpraying,
    ValiantLoadBalancing,
    WeightedLoadBalancing,
)
from repro.routing.static import StaticPathSet
from repro.topology import MeshTopology, TorusTopology, is_minimal_path, is_valid_path


def weights_total(weights):
    return sum(weights.values())


class TestRps:
    def test_paths_minimal(self, torus2d, rng):
        rps = RandomPacketSpraying(torus2d)
        for _ in range(50):
            path = rps.sample_path(0, 10, rng)
            assert is_minimal_path(torus2d, path)

    def test_weight_cache_is_stable(self, torus2d):
        rps = RandomPacketSpraying(torus2d)
        assert rps.link_weights(0, 10) is rps.link_weights(0, 10)

    def test_is_minimal_protocol(self, torus2d):
        assert RandomPacketSpraying(torus2d).minimal


class TestDor:
    def test_deterministic_without_ties(self, rng):
        topo = TorusTopology((5, 5))
        dor = DestinationTagRouting(topo)
        src, dst = topo.node_at((0, 0)), topo.node_at((2, 1))
        paths = {tuple(dor.sample_path(src, dst, rng)) for _ in range(20)}
        assert len(paths) == 1

    def test_dimension_order(self):
        topo = TorusTopology((4, 4))
        dor = DestinationTagRouting(topo)
        path = dor.sample_path(
            topo.node_at((0, 0)), topo.node_at((1, 1)), random.Random(0)
        )
        coords = [topo.coordinates(n) for n in path]
        # Dimension 0 corrected before dimension 1.
        assert coords == [(0, 0), (1, 0), (1, 1)]

    def test_path_minimal(self, torus2d, rng):
        dor = DestinationTagRouting(torus2d)
        for dst in range(1, torus2d.n_nodes):
            assert is_minimal_path(torus2d, dor.sample_path(0, dst, rng))

    def test_wrap_tie_split_weights(self):
        topo = TorusTopology((4, 4))
        dor = DestinationTagRouting(topo)
        src, dst = topo.node_at((0, 0)), topo.node_at((2, 0))
        weights = dor.link_weights(src, dst)
        # Offset 2 on a 4-ring: both directions minimal, each weighted 0.5.
        assert weights_total(weights) == pytest.approx(2.0)
        assert all(w == pytest.approx(0.5) for w in weights.values())

    def test_wrap_tie_sampling_uses_both(self, rng):
        topo = TorusTopology((4, 4))
        dor = DestinationTagRouting(topo)
        src, dst = topo.node_at((0, 0)), topo.node_at((2, 0))
        paths = {tuple(dor.sample_path(src, dst, rng)) for _ in range(50)}
        assert len(paths) == 2

    def test_mesh_has_no_wrap(self, rng):
        topo = MeshTopology((4, 4))
        dor = DestinationTagRouting(topo)
        src, dst = topo.node_at((0, 0)), topo.node_at((2, 0))
        weights = dor.link_weights(src, dst)
        assert all(w == pytest.approx(1.0) for w in weights.values())

    def test_generic_topology_fallback(self, line3, rng):
        dor = DestinationTagRouting(line3)
        assert dor.sample_path(0, 2, rng) == [0, 1, 2]
        assert weights_total(dor.link_weights(0, 2)) == pytest.approx(2.0)


class TestVlb:
    def test_paths_valid_but_not_necessarily_minimal(self, torus2d, rng):
        vlb = ValiantLoadBalancing(torus2d)
        lengths = set()
        for _ in range(50):
            path = vlb.sample_path(0, 1, rng)
            assert is_valid_path(torus2d, path)
            assert path[0] == 0 and path[-1] == 1
            lengths.add(len(path))
        assert max(lengths) > torus2d.distance(0, 1) + 1  # detours happen

    def test_weight_sum_is_expected_two_phase_length(self, torus2d):
        vlb = ValiantLoadBalancing(torus2d)
        weights = vlb.link_weights(0, 5)
        n = torus2d.n_nodes
        expected = (
            sum(torus2d.distance(0, w) for w in torus2d.nodes()) / n
            + sum(torus2d.distance(w, 5) for w in torus2d.nodes()) / n
        )
        assert weights_total(weights) == pytest.approx(expected)

    def test_translation_matches_direct_computation(self, torus2d):
        vlb = ValiantLoadBalancing(torus2d)
        translated = vlb._phase1_weights(5)
        direct = vlb._compute_phase1(5)
        assert set(translated) == set(direct)
        for link in direct:
            assert translated[link] == pytest.approx(direct[link])

    def test_not_minimal_flag(self, torus2d):
        assert not ValiantLoadBalancing(torus2d).minimal


class TestWlb:
    def test_requires_coordinates(self, line3):
        with pytest.raises(RoutingError):
            WeightedLoadBalancing(line3)

    def test_paths_valid(self, torus2d, rng):
        wlb = WeightedLoadBalancing(torus2d)
        for _ in range(50):
            path = wlb.sample_path(0, 10, rng)
            assert is_valid_path(torus2d, path)
            assert path[0] == 0 and path[-1] == 10

    def test_short_offsets_prefer_minimal(self):
        # Offset 1 on an 8-ring: short way w.p. 7/8.
        topo = TorusTopology((8, 8))
        wlb = WeightedLoadBalancing(topo)
        options = wlb._direction_options(
            topo.node_at((0, 0)), topo.node_at((1, 0))
        )
        (step, count, prob), (_, count2, prob2) = options[0]
        assert (step, count) == (1, 1)
        assert prob == pytest.approx(7 / 8)
        assert count2 == 7 and prob2 == pytest.approx(1 / 8)

    def test_weight_conservation(self, torus2d):
        wlb = WeightedLoadBalancing(torus2d)
        weights = wlb.link_weights(0, 10)
        out = sum(
            w for link, w in weights.items() if torus2d.links[link].src == 0
        )
        assert out == pytest.approx(1.0)

    def test_mesh_degenerates_to_minimal(self, rng):
        topo = MeshTopology((4, 4))
        wlb = WeightedLoadBalancing(topo)
        for _ in range(20):
            path = wlb.sample_path(
                topo.node_at((0, 0)), topo.node_at((2, 2)), rng
            )
            assert is_minimal_path(topo, path)


class TestEcmp:
    def test_single_deterministic_path_per_flow(self, torus2d, rng):
        ecmp = EcmpSinglePath(torus2d)
        paths = {
            tuple(ecmp.sample_path(0, 10, rng, flow_id=7)) for _ in range(10)
        }
        assert len(paths) == 1

    def test_different_flows_spread_over_paths(self, torus2d, rng):
        ecmp = EcmpSinglePath(torus2d)
        paths = {
            tuple(ecmp.sample_path(0, 10, rng, flow_id=f)) for f in range(50)
        }
        assert len(paths) > 1  # the hash actually spreads flows

    def test_path_minimal(self, torus2d):
        ecmp = EcmpSinglePath(torus2d)
        for flow in range(10):
            assert is_minimal_path(torus2d, ecmp.flow_path(0, 10, flow))

    def test_weights_are_path_indicator(self, torus2d):
        ecmp = EcmpSinglePath(torus2d)
        weights = ecmp.link_weights(0, 10, flow_id=3)
        assert all(w == 1.0 for w in weights.values())
        assert weights_total(weights) == torus2d.distance(0, 10)


class TestStatic:
    def test_set_and_sample(self, torus2d, rng):
        static = StaticPathSet(torus2d)
        static.set_paths(0, 5, [[0, 1, 5], [0, 4, 5]], [0.25, 0.75])
        seen = {tuple(static.sample_path(0, 5, rng)) for _ in range(50)}
        assert seen == {(0, 1, 5), (0, 4, 5)}

    def test_weights_respect_probabilities(self, torus2d):
        static = StaticPathSet(torus2d)
        static.set_paths(0, 5, [[0, 1, 5], [0, 4, 5]], [0.25, 0.75])
        weights = static.link_weights(0, 5)
        assert weights[torus2d.link_id(0, 1)] == pytest.approx(0.25)
        assert weights[torus2d.link_id(0, 4)] == pytest.approx(0.75)

    def test_unconfigured_pair_raises(self, torus2d, rng):
        static = StaticPathSet(torus2d)
        with pytest.raises(RoutingError):
            static.sample_path(0, 5, rng)

    def test_invalid_path_rejected(self, torus2d):
        static = StaticPathSet(torus2d)
        with pytest.raises(RoutingError):
            static.set_paths(0, 5, [[0, 5]])  # not adjacent
        with pytest.raises(RoutingError):
            static.set_paths(0, 5, [[0, 1, 2]])  # wrong endpoint
        with pytest.raises(RoutingError):
            static.set_paths(0, 5, [])

    def test_probability_validation(self, torus2d):
        static = StaticPathSet(torus2d)
        with pytest.raises(RoutingError):
            static.set_paths(0, 5, [[0, 1, 5]], [0.0])
        with pytest.raises(RoutingError):
            static.set_paths(0, 5, [[0, 1, 5], [0, 4, 5]], [1.0])
