"""Tests for the routing-protocol registry."""

import pytest

from repro.errors import RoutingError
from repro.routing import (
    DestinationTagRouting,
    EcmpSinglePath,
    RandomPacketSpraying,
    RoutingProtocol,
    ValiantLoadBalancing,
    WeightedLoadBalancing,
    make_protocol,
    protocol_class,
    registered_protocols,
)
from repro.routing.static import StaticPathSet


class TestRegistry:
    def test_known_names(self):
        names = set(registered_protocols())
        assert {"rps", "dor", "vlb", "wlb", "ecmp", "static"} <= names

    def test_lookup_by_name(self):
        assert protocol_class("rps") is RandomPacketSpraying
        assert protocol_class("vlb") is ValiantLoadBalancing

    def test_lookup_by_id(self):
        assert protocol_class(0) is RandomPacketSpraying
        assert protocol_class(1) is DestinationTagRouting
        assert protocol_class(2) is ValiantLoadBalancing
        assert protocol_class(3) is WeightedLoadBalancing
        assert protocol_class(4) is EcmpSinglePath
        assert protocol_class(5) is StaticPathSet

    def test_unknown_name_raises(self):
        with pytest.raises(RoutingError):
            protocol_class("carrier-pigeon")

    def test_unknown_id_raises(self):
        with pytest.raises(RoutingError):
            protocol_class(200)

    def test_make_protocol(self, torus2d):
        protocol = make_protocol("rps", torus2d)
        assert isinstance(protocol, RandomPacketSpraying)
        assert protocol.topology is torus2d

    def test_protocol_ids_fit_wire_nibble(self):
        # Broadcast packets carry the protocol id in four bits.
        for cls in registered_protocols().values():
            assert 0 <= cls.protocol_id <= 0xF

    def test_duplicate_registration_rejected(self):
        from repro.routing.base import register_protocol

        class Dup(RoutingProtocol):
            name = "rps"
            protocol_id = 14

            def sample_path(self, src, dst, rng, flow_id=0):
                raise NotImplementedError

            def link_weights(self, src, dst, flow_id=0):
                raise NotImplementedError

        with pytest.raises(RoutingError):
            register_protocol(Dup)

    def test_endpoint_validation(self, torus2d, rng):
        protocol = make_protocol("rps", torus2d)
        with pytest.raises(RoutingError):
            protocol.sample_path(0, 99, rng)
