"""Tests for the spray dynamic programs in repro.routing.weights."""

import random

import pytest

from repro.errors import RoutingError
from repro.routing import (
    deterministic_minimal_path,
    merge_weights,
    path_weights,
    sample_spray_path,
    spray_injection_weights,
    spray_link_weights,
)
from repro.topology import TorusTopology, is_minimal_path


class TestSprayWeights:
    def test_weights_sum_to_expected_path_length(self, torus2d):
        for dst in (1, 5, 10):
            weights = spray_link_weights(torus2d, 0, dst)
            assert sum(weights.values()) == pytest.approx(torus2d.distance(0, dst))

    def test_outgoing_conservation(self, torus2d):
        # Mass out of the source equals one.
        weights = spray_link_weights(torus2d, 0, 10)
        out = sum(
            w
            for link, w in weights.items()
            if torus2d.links[link].src == 0
        )
        assert out == pytest.approx(1.0)

    def test_incoming_at_destination_is_one(self, torus2d):
        weights = spray_link_weights(torus2d, 0, 10)
        incoming = sum(
            w for link, w in weights.items() if torus2d.links[link].dst == 10
        )
        assert incoming == pytest.approx(1.0)

    def test_only_minimal_links_used(self, torus2d):
        dst = 10
        dist = torus2d.distances_to(dst)
        for link_id in spray_link_weights(torus2d, 0, dst):
            link = torus2d.links[link_id]
            assert dist[link.dst] == dist[link.src] - 1

    def test_known_small_case(self):
        # 2x2 torus (a square): two equal-length paths, each side 0.5.
        topo = TorusTopology((2, 2))
        weights = spray_link_weights(topo, 0, 3)
        assert sum(weights.values()) == pytest.approx(2.0)
        values = sorted(weights.values())
        assert values == pytest.approx([0.5, 0.5, 0.5, 0.5])

    def test_matches_monte_carlo(self, torus2d):
        rng = random.Random(99)
        src, dst = 0, 10
        counts = {}
        trials = 4000
        for _ in range(trials):
            path = sample_spray_path(torus2d, src, dst, rng)
            for i in range(len(path) - 1):
                link = torus2d.link_id(path[i], path[i + 1])
                counts[link] = counts.get(link, 0) + 1
        weights = spray_link_weights(torus2d, src, dst)
        for link, weight in weights.items():
            if weight > 0.05:
                assert counts.get(link, 0) / trials == pytest.approx(
                    weight, rel=0.2
                )


class TestInjection:
    def test_linearity(self, torus2d):
        a = spray_link_weights(torus2d, 0, 10)
        b = spray_link_weights(torus2d, 3, 10)
        combined = spray_injection_weights(torus2d, 10, {0: 1.0, 3: 1.0})
        merged = merge_weights(a, b)
        assert set(combined) == set(merged)
        for link in combined:
            assert combined[link] == pytest.approx(merged[link])

    def test_injection_at_destination_absorbed(self, torus2d):
        assert spray_injection_weights(torus2d, 5, {5: 1.0}) == {}

    def test_negative_injection_rejected(self, torus2d):
        with pytest.raises(RoutingError):
            spray_injection_weights(torus2d, 5, {0: -1.0})


class TestSampling:
    def test_sampled_paths_minimal(self, torus2d, rng):
        for dst in (1, 5, 10, 15):
            path = sample_spray_path(torus2d, 0, dst, rng)
            assert is_minimal_path(torus2d, path)

    def test_identity(self, torus2d, rng):
        assert sample_spray_path(torus2d, 4, 4, rng) == [4]

    def test_deterministic_minimal_path(self, torus2d):
        path = deterministic_minimal_path(torus2d, 0, 10)
        assert is_minimal_path(torus2d, path)
        assert path == deterministic_minimal_path(torus2d, 0, 10)


class TestHelpers:
    def test_path_weights(self, torus2d):
        weights = path_weights(torus2d, [0, 1, 5])
        assert weights[torus2d.link_id(0, 1)] == 1.0
        assert weights[torus2d.link_id(1, 5)] == 1.0

    def test_merge_with_scales(self, torus2d):
        a = {0: 1.0, 1: 2.0}
        b = {1: 1.0}
        merged = merge_weights(a, b, scales=[0.5, 2.0])
        assert merged == {0: 0.5, 1: 3.0}

    def test_merge_scale_mismatch(self):
        with pytest.raises(RoutingError):
            merge_weights({0: 1.0}, scales=[1.0, 2.0])
