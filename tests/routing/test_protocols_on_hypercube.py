"""Routing protocols exercised on the hypercube (2-ary n-cube) fabric.

The hypercube stresses corner cases the torus hides: every dimension has
size two, so wrap ties are everywhere and the torus-specific closed forms
must degrade gracefully.
"""

import random

import pytest

from repro.congestion import FlowSpec, WeightProvider, waterfill
from repro.routing import (
    DestinationTagRouting,
    RandomPacketSpraying,
    ValiantLoadBalancing,
    WeightedLoadBalancing,
)
from repro.topology import HypercubeTopology, is_minimal_path, is_valid_path


@pytest.fixture
def cube():
    return HypercubeTopology(4)


class TestOnHypercube:
    def test_rps_minimal(self, cube, rng):
        rps = RandomPacketSpraying(cube)
        for dst in (1, 7, 15):
            path = rps.sample_path(0, dst, rng)
            assert is_minimal_path(cube, path)
        weights = rps.link_weights(0, 15)
        assert sum(weights.values()) == pytest.approx(4.0)

    def test_dor_fixes_bits_in_order(self, cube):
        dor = DestinationTagRouting(cube)
        path = dor.sample_path(0b0000, 0b1111, random.Random(0))
        assert is_minimal_path(cube, path)
        assert len({tuple(dor.sample_path(0, 15, random.Random(s))) for s in range(5)}) == 1

    def test_vlb_translation_by_xor(self, cube):
        vlb = ValiantLoadBalancing(cube)
        translated = vlb._phase1_weights(5)
        direct = vlb._compute_phase1(5)
        assert set(translated) == set(direct)
        for link in direct:
            assert translated[link] == pytest.approx(direct[link])

    def test_vlb_paths_valid(self, cube, rng):
        vlb = ValiantLoadBalancing(cube)
        for _ in range(30):
            path = vlb.sample_path(3, 12, rng)
            assert is_valid_path(cube, path)
            assert path[0] == 3 and path[-1] == 12

    def test_wlb_runs_on_all_dims_two(self, cube, rng):
        wlb = WeightedLoadBalancing(cube)
        path = wlb.sample_path(0, 15, rng)
        assert is_valid_path(cube, path)
        weights = wlb.link_weights(0, 15)
        out = sum(w for link, w in weights.items() if cube.links[link].src == 0)
        assert out == pytest.approx(1.0)

    def test_waterfill_on_hypercube(self, cube):
        provider = WeightProvider(cube)
        flows = [
            FlowSpec(i, i, 15 - i, protocol=proto)
            for i, proto in enumerate(("rps", "dor", "vlb", "wlb"))
        ]
        alloc = waterfill(cube, flows, provider, headroom=0.05)
        assert all(r > 0 for r in alloc.rates_bps.values())
        assert (alloc.link_load_bps <= alloc.link_capacity_bps * (1 + 1e-6)).all()
