"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_dims_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["info", "--dims", "3x4x5"])
        assert args.dims == (3, 4, 5)

    def test_bad_dims_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["info", "--dims", "three"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--dims", "4x4"]) == 0
        out = capsys.readouterr().out
        assert "torus(4x4)" in out
        assert "nodes:           16" in out

    def test_info_hypercube(self, capsys):
        assert main(["info", "--topology", "hypercube", "--dims", "4"]) == 0
        assert "hypercube(4)" in capsys.readouterr().out

    def test_rates(self, capsys):
        assert main(["rates", "--dims", "4x4", "--flows", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Gbps" in out
        assert "aggregate" in out

    def test_simulate(self, capsys):
        assert main(
            [
                "simulate",
                "--dims",
                "3x3",
                "--flows",
                "20",
                "--interarrival-ns",
                "20000",
                "--mean-bytes",
                "20000",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "completed" in out

    def test_figure2(self, capsys):
        assert main(["figure2", "--radix", "4"]) == 0
        out = capsys.readouterr().out
        assert "tornado" in out
        assert "vlb" in out

    def test_claims(self, capsys):
        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out
        assert "FAIL" not in out


@pytest.mark.experiments
class TestSweep:
    def test_list_figures(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig02", "fig07", "fig10_14", "fig17", "fig18"):
            assert name in out

    def test_missing_figure_is_an_error(self, capsys):
        assert main(["sweep"]) == 2

    def test_unknown_figure_is_an_error(self):
        assert main(["sweep", "fig99"]) == 2

    def test_dry_run_lists_tasks(self, capsys):
        assert main(["sweep", "fig02", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "24 task(s)" in out
        assert "rps/uniform/r0" in out
        assert "wlb/worst-case/r0" in out

    def test_only_filter_and_cache_round_trip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["sweep", "fig02", "--only", "rps/uniform", "--cache-dir", cache]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "1 task(s)" in first and "complete" in first
        # Second run is fully cache-satisfied.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "1 cached" in second and "0 computed" in second

    def test_interrupt_then_resume(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        base = ["sweep", "fig02", "--only", "uniform", "--cache-dir", cache]
        assert main(base + ["--max-tasks", "2"]) == 3
        out = capsys.readouterr().out
        assert "interrupted" in out
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "2 cached" in out

    def test_fail_task_injection_retries(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(
            [
                "sweep", "fig02", "--only", "rps/uniform",
                "--cache-dir", cache,
                "--fail-task", "rps/uniform/r0:1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "1 retrie(s)" in out

    def test_figures_writes_tables(self, tmp_path, capsys):
        results = tmp_path / "results"
        assert main(
            [
                "figures", "fig02",
                "--cache-dir", str(tmp_path / "cache"),
                "--results-dir", str(results),
            ]
        ) == 0
        table = (results / "fig02_routing_table.txt").read_text()
        assert table.startswith("\n===== fig02_routing_table [scale=small] =====")
        assert "| paper:" in table


@pytest.mark.synth
class TestSynth:
    def test_describe(self, capsys):
        assert main(
            [
                "synth", "describe", "--racks", "4", "--rack-dims", "2x2",
                "--gateway-ports", "2", "--protocol", "hier_wlb",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "nodes:             16 (4 racks x 4 nodes)" in out
        assert "fabric fingerprint:" in out
        assert "per-tier channel load:" in out
        assert "<-- bottleneck" in out

    def test_generate_manifest_and_report(self, tmp_path, capsys):
        manifest = tmp_path / "fabric.json"
        argv = [
            "synth", "generate", "--racks", "4", "--rack-dims", "2x2",
            "--gateway-ports", "2", "--seed", "9",
            "--protocol", "hier_vlb", "--out", str(manifest),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        import json

        first = json.loads(manifest.read_text())
        assert first["report"]["budget_ok"] is True
        assert first["tier_load"]["tiers"]["gateway"]["links"] > 0
        # Regenerating the same spec must produce identical bytes.
        blob = manifest.read_text()
        assert main(argv) == 0
        capsys.readouterr()
        assert manifest.read_text() == blob
        # `repro report` renders the per-tier table and bisection.
        assert main(["report", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "per-tier channel load:" in out
        assert "bisection bandwidth:" in out

    def test_budget_violation_is_a_cli_error(self, capsys):
        assert main(
            [
                "synth", "describe", "--design", "ring",
                "--racks", "4", "--rack-dims", "2x2",
                "--oversubscription", "0.5",
            ]
        ) == 2
        assert "oversubscription" in capsys.readouterr().err

    def test_sweep_dry_run(self, capsys):
        assert main(["synth", "sweep", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "campaign synth" in out
        assert "synth-flat/r0" in out

    def test_sweep_writes_tables(self, tmp_path, capsys):
        results = tmp_path / "results"
        assert main(
            [
                "synth", "sweep",
                "--cache-dir", str(tmp_path / "cache"),
                "--results-dir", str(results),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "complete" in out
        table = (results / "synth_tier_load.txt").read_text()
        assert "gateway" in table
        campaign = (results / "synth_campaign.txt").read_text()
        assert "PASS" in campaign
