"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_dims_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["info", "--dims", "3x4x5"])
        assert args.dims == (3, 4, 5)

    def test_bad_dims_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["info", "--dims", "three"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--dims", "4x4"]) == 0
        out = capsys.readouterr().out
        assert "torus(4x4)" in out
        assert "nodes:           16" in out

    def test_info_hypercube(self, capsys):
        assert main(["info", "--topology", "hypercube", "--dims", "4"]) == 0
        assert "hypercube(4)" in capsys.readouterr().out

    def test_rates(self, capsys):
        assert main(["rates", "--dims", "4x4", "--flows", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Gbps" in out
        assert "aggregate" in out

    def test_simulate(self, capsys):
        assert main(
            [
                "simulate",
                "--dims",
                "3x3",
                "--flows",
                "20",
                "--interarrival-ns",
                "20000",
                "--mean-bytes",
                "20000",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "completed" in out

    def test_figure2(self, capsys):
        assert main(["figure2", "--radix", "4"]) == 0
        out = capsys.readouterr().out
        assert "tornado" in out
        assert "vlb" in out

    def test_claims(self, capsys):
        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out
        assert "FAIL" not in out
