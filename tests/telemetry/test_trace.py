"""Unit tests for the Chrome trace-event recorder."""

import json

import pytest

from repro.telemetry import (
    NULL_TRACE,
    TRACK_CONTROLLER,
    TRACK_SIM,
    EventLoopTracer,
    TraceRecorder,
)

pytestmark = pytest.mark.telemetry


def non_meta(trace):
    return [e for e in trace.events() if e["ph"] != "M"]


class TestTraceRecorder:
    def test_thread_names_emitted_up_front(self):
        trace = TraceRecorder()
        meta = [e for e in trace.events() if e["ph"] == "M"]
        assert meta, "expected thread_name metadata events"
        assert all(e["name"] == "thread_name" for e in meta)
        names = {e["args"]["name"] for e in meta}
        assert "event loop" in names and "rate controller" in names

    def test_complete_span(self):
        trace = TraceRecorder()
        trace.complete("batch", "eventloop", ts_ns=2_000, dur_ns=500,
                       tid=TRACK_SIM, args={"events": 3})
        (event,) = non_meta(trace)
        assert event["ph"] == "X"
        assert event["ts"] == 2.0  # ns -> us
        assert event["dur"] == 0.5
        assert event["args"] == {"events": 3}

    def test_instant(self):
        trace = TraceRecorder()
        trace.instant("epoch", "controller", ts_ns=1_000, tid=TRACK_CONTROLLER)
        (event,) = non_meta(trace)
        assert event["ph"] == "i"
        assert event["s"] == "t"

    def test_counter(self):
        trace = TraceRecorder()
        trace.counter("rack.queued_bytes", 3_000, {"bytes": 42})
        (event,) = non_meta(trace)
        assert event["ph"] == "C"
        assert event["args"] == {"bytes": 42}

    def test_document_shape_and_json(self, tmp_path):
        trace = TraceRecorder()
        trace.instant("x", "c", 0)
        doc = trace.to_document()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["truncated"] is False
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = json.loads(path.read_text())
        assert isinstance(loaded["traceEvents"], list)

    def test_max_events_truncates(self):
        trace = TraceRecorder(max_events=8)
        for i in range(20):
            trace.instant("e", "c", i)
        assert len(trace) == 8
        assert trace.truncated
        assert trace.to_document()["otherData"]["truncated"] is True

    def test_eventloop_tracer_adapter(self):
        trace = TraceRecorder()
        EventLoopTracer(trace).on_batch(1_000, 4_000, 7)
        (event,) = non_meta(trace)
        assert event["name"] == "batch"
        assert event["dur"] == 3.0
        assert event["args"] == {"events": 7}


class TestNullTrace:
    def test_falsy_and_noop(self):
        assert not NULL_TRACE
        NULL_TRACE.complete("a", "b", 0, 1)
        NULL_TRACE.instant("a", "b", 0)
        NULL_TRACE.counter("a", 0, {"v": 1})
        assert len(NULL_TRACE) == 0
        assert NULL_TRACE.to_document()["traceEvents"] == []
