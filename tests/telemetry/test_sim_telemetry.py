"""Integration tests: telemetry threaded through real simulation runs.

The two load-bearing properties:

* **Determinism** — two runs of the same seeded scenario produce
  byte-identical trace and metrics JSON (no wall-clock leakage).
* **Non-perturbation** — telemetry (enabled, disabled-null, or absent)
  never changes simulation results: same FCTs, same wire bytes, same
  event count.
"""

import json

import pytest

from repro.sim import SimConfig, run_simulation
from repro.telemetry import Telemetry, TelemetryConfig
from repro.topology import TorusTopology
from repro.workloads import FixedSize, poisson_trace

pytestmark = pytest.mark.telemetry


def scenario():
    topo = TorusTopology((3, 3))
    trace = poisson_trace(topo, 20, 15_000, sizes=FixedSize(30_000), seed=5)
    return topo, trace, SimConfig(stack="r2c2", seed=5)


def run_with(telemetry):
    topo, trace, config = scenario()
    return run_simulation(topo, trace, config, telemetry=telemetry)


def fingerprint(metrics):
    return (
        sorted((f.flow_id, f.fct_ns()) for f in metrics.completed_flows()),
        metrics.total_bytes_on_wire,
        metrics.broadcast_bytes,
        metrics.drops,
    )


@pytest.fixture(scope="module")
def enabled_run():
    telemetry = Telemetry(TelemetryConfig())
    return run_with(telemetry), telemetry


class TestDeterminism:
    def test_same_seed_byte_identical_outputs(self, enabled_run):
        _, first = enabled_run
        second = Telemetry(TelemetryConfig())
        run_with(second)
        assert first.trace.to_json() == second.trace.to_json()
        assert first.metrics.to_json() == second.metrics.to_json()


class TestNonPerturbation:
    def test_disabled_equals_enabled_equals_absent(self, enabled_run):
        metrics_on, _ = enabled_run
        metrics_null = run_with(Telemetry(TelemetryConfig(metrics=False, trace=False)))
        metrics_off = run_with(None)
        assert fingerprint(metrics_on) == fingerprint(metrics_null)
        assert fingerprint(metrics_on) == fingerprint(metrics_off)


class TestTraceContents:
    def test_expected_event_families_present(self, enabled_run):
        _, telemetry = enabled_run
        events = telemetry.trace.events()
        cats = {e.get("cat") for e in events}
        # Controller epochs, broadcast announces, event-loop batches and
        # link-probe counters all land in the trace.
        assert "controller" in cats
        assert "broadcast" in cats
        assert "eventloop" in cats
        assert "counter" in cats
        epoch = [e for e in events if e["name"] == "epoch"]
        assert epoch and all(
            e["args"]["outcome"] in ("recomputed", "skipped") for e in epoch
        )
        probe = [e for e in events if e["name"] == "rack.queued_bytes"]
        assert probe and all(e["ph"] == "C" for e in probe)

    def test_trace_is_valid_chrome_trace_json(self, enabled_run):
        _, telemetry = enabled_run
        doc = json.loads(telemetry.trace.to_json())
        assert isinstance(doc["traceEvents"], list)
        for event in doc["traceEvents"]:
            assert "ph" in event and "name" in event
            if event["ph"] != "M":
                assert "ts" in event


class TestSnapshotContents:
    def test_counters_match_sim_metrics_totals(self, enabled_run):
        metrics, telemetry = enabled_run
        snap = telemetry.metrics.snapshot()
        counters = snap["counters"]
        assert counters["wire.total_bytes"] == metrics.total_bytes_on_wire
        assert counters["broadcast.wire_bytes"] == metrics.broadcast_bytes
        assert counters["wire.drops"] == metrics.drops

    def test_queue_histograms_populated(self, enabled_run):
        _, telemetry = enabled_run
        snap = telemetry.metrics.snapshot()
        occupancy = snap["histograms"]["queue.occupancy_bytes"]
        assert occupancy["count"] > 0
        assert snap["histograms"]["queue.max_occupancy_bytes"]["count"] > 0

    def test_epoch_counters_match_summary(self, enabled_run):
        metrics, telemetry = enabled_run
        counters = telemetry.metrics.snapshot()["counters"]
        recomputed = counters.get('controller.epochs{outcome="recomputed"}', 0)
        skipped = counters.get('controller.epochs{outcome="skipped"}', 0)
        assert recomputed == metrics.epochs_recomputed
        assert skipped == metrics.epochs_skipped
        assert recomputed > 0

    def test_link_series_recorded(self, enabled_run):
        _, telemetry = enabled_run
        series = telemetry.metrics.snapshot()["series"]
        assert "rack.queued_bytes" in series
        assert any(name.startswith("link.util{") for name in series)


class TestCli:
    def test_simulate_trace_metrics_and_report(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(
            [
                "simulate", "--dims", "3x3", "--flows", "15",
                "--interarrival-ns", "20000", "--mean-bytes", "20000",
                "--trace", str(trace_path), "--metrics", str(metrics_path),
            ]
        ) == 0
        capsys.readouterr()
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]
        snap = json.loads(metrics_path.read_text())
        assert snap["counters"]["wire.total_bytes"] > 0
        assert main(["report", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "wire.total_bytes" in out
        assert "queue.occupancy_bytes" in out
