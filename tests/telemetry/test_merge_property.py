"""Algebraic properties of :func:`repro.telemetry.merge_snapshots`.

The campaign runner and the sharded-simulation coordinator both lean on
merge being a well-behaved rollup: the result must not depend on worker
arrival order, and hierarchical merging (shards → racks → campaign) must
equal one flat merge.  Hypothesis drives randomized snapshots; values are
integers so sums are exact and the equalities can be literal ``==``.

(The order-independence property deliberately holds only for snapshots
whose histogram bucket bounds agree per name — mismatched bounds keep the
first seen, by documented design — so the generator fixes bounds per name.)
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import merge_snapshots

pytestmark = pytest.mark.telemetry

_NAMES = ["sim.bytes", "sim.flows", "ctrl.epochs", "net.drops"]

#: Bucket bounds are a property of the instrument, keyed by name — every
#: snapshot mentioning a histogram name uses the same bounds, as real
#: registries do.
_BUCKETS = {
    "lat.short": [10.0, 100.0, 1000.0],
    "lat.long": [1.0, 5.0],
}

_counts = st.dictionaries(
    st.sampled_from(_NAMES), st.integers(min_value=0, max_value=10**6), max_size=4
)


def _histogram(name):
    buckets = _BUCKETS[name]
    return st.lists(
        st.integers(min_value=0, max_value=1000),
        min_size=len(buckets) + 1,
        max_size=len(buckets) + 1,
    ).flatmap(
        lambda counts: st.integers(min_value=0, max_value=10**6).map(
            lambda total: {
                "buckets": list(buckets),
                "counts": counts,
                "count": sum(counts),
                "sum": total,
                "min": min(counts) if sum(counts) else None,
                "max": max(counts) if sum(counts) else None,
            }
        )
    )


def _snapshot():
    return st.fixed_dictionaries(
        {
            "counters": _counts,
            "gauges": _counts,
            "histograms": st.dictionaries(
                st.sampled_from(sorted(_BUCKETS)), st.none(), max_size=2
            ).flatmap(
                lambda keys: st.fixed_dictionaries(
                    {name: _histogram(name) for name in keys}
                )
            ),
        }
    )


@given(snaps=st.lists(_snapshot(), min_size=0, max_size=5), seed=st.randoms())
@settings(max_examples=60, deadline=None)
def test_merge_is_order_independent(snaps, seed):
    shuffled = list(snaps)
    seed.shuffle(shuffled)
    assert merge_snapshots(shuffled) == merge_snapshots(snaps)


@given(
    a=st.lists(_snapshot(), min_size=0, max_size=3),
    b=st.lists(_snapshot(), min_size=0, max_size=3),
    c=st.lists(_snapshot(), min_size=0, max_size=3),
)
@settings(max_examples=60, deadline=None)
def test_merge_is_associative(a, b, c):
    """Hierarchical rollup == flat rollup: merge(merge(a+b), c) ==
    merge(a, merge(b+c)) == merge(a+b+c)."""
    flat = merge_snapshots(a + b + c)
    left = merge_snapshots([merge_snapshots(a + b)] + c)
    right = merge_snapshots(a + [merge_snapshots(b + c)])
    assert left == flat
    assert right == flat


@given(snaps=st.lists(_snapshot(), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_empty_snapshot_is_identity(snaps):
    empty = {"counters": {}, "gauges": {}, "histograms": {}}
    assert merge_snapshots(snaps + [empty]) == merge_snapshots(snaps)
    assert merge_snapshots([empty] + snaps) == merge_snapshots(snaps)


def test_merge_of_nothing_is_empty():
    assert merge_snapshots([]) == {"counters": {}, "gauges": {}, "histograms": {}}


def test_mismatched_buckets_are_counted_not_silently_lost():
    a = {
        "histograms": {
            "h": {"buckets": [1.0], "counts": [1, 2], "count": 3, "sum": 4,
                  "min": 1, "max": 2}
        }
    }
    b = {
        "histograms": {
            "h": {"buckets": [2.0], "counts": [5, 6], "count": 11, "sum": 7,
                  "min": 5, "max": 6}
        }
    }
    merged = merge_snapshots([a, b])
    assert merged["_dropped"] == 1
    assert merged["histograms"]["h"]["buckets"] == [1.0]


def test_ragged_series_are_dropped_not_merged():
    # Per-run time axes are not comparable across shards, so merge drops
    # the "series" section outright rather than zipping ragged arrays.
    a = {
        "counters": {"sim.bytes": 10},
        "series": {"queue.depth": {"t_ns": [0, 10, 20], "values": [1, 2, 3]}},
    }
    b = {
        "counters": {"sim.bytes": 5},
        "series": {"queue.depth": {"t_ns": [0, 50], "values": [9, 9]}},
    }
    merged = merge_snapshots([a, b])
    assert "series" not in merged
    assert merged["counters"] == {"sim.bytes": 15}


def test_empty_shard_snapshots_are_identity():
    # A shard that owns no instrumented nodes reports a bare or partial
    # snapshot; both must behave as merge identities.
    full = {
        "counters": {"sim.flows": 3},
        "gauges": {"net.load": 0.5},
        "histograms": {},
    }
    for empty in ({}, {"counters": {}}, {"gauges": {}, "histograms": {}}):
        merged = merge_snapshots([empty, full, empty])
        assert merged["counters"] == full["counters"]
        assert merged["gauges"] == full["gauges"]
        assert merged["histograms"] == {}
