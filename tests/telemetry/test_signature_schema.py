"""Signature layout pinning: the fuzz corpus depends on it.

Stored corpus entries carry behavioral signatures and deduplicate against
them across sessions, so the feature layout is frozen: any change to the
feature set, order, or quantization must bump
``SIGNATURE_SCHEMA_VERSION``.  The digest below is computed from a fixed
battery of synthetic results — if it changes while the version does not,
this test fails loudly (that is its entire job: bump the version and
migrate/invalidate the corpus, don't silently re-key it).
"""

import hashlib
import json

import pytest

from repro.telemetry import (
    SIGNATURE_FEATURES,
    SIGNATURE_SCHEMA_VERSION,
    log2_bucket,
    sim_signature,
)

pytestmark = pytest.mark.telemetry

#: Fixed battery spanning every feature's code path (empty result,
#: partial completion, saturated counters, audit violation).
_BATTERY = [
    {},
    {"completion_rate": 0.5, "summary": {"queue_p99_kb": 17, "drops": 3}},
    {
        "completion_rate": 1.0,
        "summary": {
            "queue_p99_kb": 1024,
            "drops": 0,
            "epochs_recomputed": 12,
            "broadcast_bytes": 1 << 20,
        },
        "reorder_max": 9,
        "wire_losses": 40,
        "audit": {"ok": True},
    },
    {
        "completion_rate": 0.0,
        "telemetry": {"counters": {"wire.losses": 7}},
        "audit": {"ok": False, "violations": ["x"]},
    },
]

#: Digest of the battery's signatures under schema version 1.  Pinned on
#: purpose — see the module docstring before "fixing" a mismatch here.
_PINNED_DIGEST = "17af44f8180da6b2f5fc9e2d399bb7562fbd78ed722123dc2bdc30b366e310d5"


def _digest() -> str:
    payload = json.dumps(
        [sim_signature(result) for result in _BATTERY], sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def test_schema_version_is_pinned():
    assert SIGNATURE_SCHEMA_VERSION == 1
    assert SIGNATURE_FEATURES == (
        "completed",
        "queue_p99",
        "reorder",
        "drops",
        "losses",
        "epochs",
        "bcast",
        "audit",
    )


def test_signature_layout_drift_requires_version_bump():
    assert _digest() == _PINNED_DIGEST, (
        "signature layout changed without a SIGNATURE_SCHEMA_VERSION bump: "
        "stored fuzz-corpus signatures would silently stop matching. Bump "
        "the version, regenerate tests/corpus signatures, and re-pin this "
        "digest."
    )


def test_feature_names_match_emission_order():
    for result in _BATTERY:
        assert tuple(n for n, _ in sim_signature(result)) == SIGNATURE_FEATURES


def test_log2_bucket_boundaries():
    assert [log2_bucket(v) for v in (0, 1, 2, 3, 4, 7, 8)] == [0, 1, 2, 2, 3, 3, 4]
    assert log2_bucket(-5) == 0
