"""Unit tests for the metrics registry and its null sinks."""

import json

import pytest

from repro.errors import ReproError
from repro.telemetry import (
    BYTE_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)

pytestmark = pytest.mark.telemetry


class TestCounter:
    def test_increments(self):
        reg = MetricsRegistry()
        ctr = reg.counter("wire.bytes")
        ctr.inc(1500)
        ctr.inc()
        assert ctr.value == 1501

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            MetricsRegistry().counter("x").inc(-1)

    def test_labels_split_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("epochs", outcome="recomputed")
        b = reg.counter("epochs", outcome="skipped")
        assert a is not b
        a.inc(3)
        assert b.value == 0

    def test_memoized(self):
        reg = MetricsRegistry()
        assert reg.counter("e", k=1) is reg.counter("e", k=1)


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("flows")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_bucketing(self):
        hist = MetricsRegistry().histogram("q", buckets=(10.0, 100.0))
        for v in (5, 10, 50, 1000):
            hist.observe(v)
        # counts: <=10, <=100, overflow
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.max == 1000
        assert hist.min == 5

    def test_quantile_estimates(self):
        hist = MetricsRegistry().histogram("q", buckets=(10.0, 100.0, 1000.0))
        for _ in range(99):
            hist.observe(5)
        hist.observe(500)
        assert hist.quantile(0.5) == 10.0
        assert hist.quantile(1.0) == 1000.0

    def test_empty_quantile_is_zero(self):
        assert MetricsRegistry().histogram("q").quantile(0.99) == 0.0

    def test_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ReproError):
            reg.histogram("a", buckets=())
        with pytest.raises(ReproError):
            reg.histogram("b", buckets=(10.0, 5.0))

    def test_default_buckets(self):
        hist = MetricsRegistry().histogram("bytes")
        assert hist.buckets == BYTE_BUCKETS


class TestTimeSeries:
    def test_append(self):
        series = MetricsRegistry().series("util", src=0, dst=1)
        series.append(1000, 0.5)
        series.append(2000, 0.7)
        assert len(series) == 2
        assert series.to_dict() == {"t_ns": [1000, 2000], "values": [0.5, 0.7]}


class TestRegistry:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("wire.bytes")
        with pytest.raises(ReproError):
            reg.histogram("wire.bytes")

    def test_snapshot_layout_and_rendering(self):
        reg = MetricsRegistry()
        reg.counter("drops", link="0-1").inc(2)
        reg.gauge("flows").set(4)
        reg.histogram("occ", buckets=(1.0,)).observe(0.5)
        reg.series("util", src=0).append(10, 0.1)
        snap = reg.snapshot()
        assert snap["counters"] == {'drops{link="0-1"}': 2}
        assert snap["gauges"] == {"flows": 4}
        assert "occ" in snap["histograms"]
        assert 'util{src="0"}' in snap["series"]

    def test_to_json_deterministic(self):
        def build():
            reg = MetricsRegistry()
            # Register in scrambled order; export must not care.
            reg.counter("b").inc(1)
            reg.counter("a", z=1).inc(2)
            reg.counter("a", y=1).inc(3)
            return reg

        assert build().to_json() == build().to_json()
        json.loads(build().to_json())  # valid JSON

    def test_save(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x").inc(7)
        path = tmp_path / "metrics.json"
        reg.save(path)
        assert json.loads(path.read_text())["counters"]["x"] == 7


class TestNullRegistry:
    def test_falsy_and_noop(self):
        assert not NULL_REGISTRY
        ctr = NULL_REGISTRY.counter("anything", label="x")
        assert not ctr
        ctr.inc(5)
        NULL_REGISTRY.gauge("g").set(1.0)
        NULL_REGISTRY.histogram("h").observe(2.0)
        NULL_REGISTRY.series("s").append(1, 2.0)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "series": {},
        }

    def test_real_instruments_truthy(self):
        reg = MetricsRegistry()
        assert reg
        assert isinstance(reg.counter("c"), Counter)
        assert isinstance(reg.gauge("g"), Gauge)
        assert isinstance(reg.histogram("h"), Histogram)
        assert isinstance(reg.series("s"), TimeSeries)
        for instrument in (reg.counter("c"), reg.gauge("g"),
                           reg.histogram("h"), reg.series("s")):
            assert instrument
